"""The timing engine gluing ORAM controllers to the DRAM model.

:class:`DramSink` implements the controller-facing
:class:`~repro.oram.stats.MemorySink` interface. Every off-chip access
is translated to a physical address via the tree layout and issued to
the DRAM model; each protocol operation's wall time (max completion of
its requests minus its start) is attributed to its operation class,
producing the paper's Fig. 8c breakdown.

Timing approximations (see DESIGN.md section 4): each operation is a
chain of *phases* -- metadata read, data reads, data writes, metadata
write-back -- reflecting the protocol's real dependencies (the
controller cannot pick slots before the metadata arrives, and cannot
write a bucket before reading it). Requests within a phase are issued
together at the phase's start; bank and channel contention then
serializes them exactly as the timing model dictates. A phase starts
when the previous phase's slowest request completes, successive
operations serialize on the sink's clock, and CPU compute between LLC
misses advances the clock by the trace's ``cpu_gap_ns``.

``simulate`` runs one (scheme, trace) pair end to end with optional
warm-up exclusion and returns a :class:`~repro.sim.results.SimResult`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.ab_oram import build_oram
from repro.mem.address_map import AddressMapping
from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.mem.timing import DDR3_1600, DramTiming
from repro.oram.config import OramConfig
from repro.oram.recovery import RobustnessConfig
from repro.oram.stats import MemorySink, OpKind
from repro.sim.results import SimResult
from repro.traces.trace import Trace


class DramSink(MemorySink):
    """Forwards a controller's off-chip accesses to the DRAM model."""

    def __init__(self, layout: TreeLayout, dram: DramModel) -> None:
        self.layout = layout
        self.dram = dram
        # Address computation inlined from TreeLayout.data_addr /
        # meta_addr: plain-int arithmetic over a materialized offset
        # list, since this runs for every simulated memory request.
        self._data_base = layout.base_addr
        self._data_off = layout._offsets.tolist()
        self._block_bytes = layout.cfg.block_bytes
        self._meta_base = layout.meta_base
        self._meta_stride = layout.meta_stride
        self.now = 0.0
        self.time_by_kind: Dict[OpKind, float] = {k: 0.0 for k in OpKind}
        self.ops_by_kind: Dict[OpKind, int] = {k: 0 for k in OpKind}
        self.readpath_latencies: List[float] = []
        self.remote_accesses = 0
        self._op_kind: Optional[OpKind] = None
        self._op_start = 0.0
        self._op_end = 0.0
        self._phase = 0
        self._phase_start = 0.0

    # ------------------------------------------------------------- clocking

    def advance(self, ns: float) -> None:
        """Advance the clock (CPU compute between requests)."""
        if ns < 0:
            raise ValueError(f"cannot advance time by {ns}")
        self.now += ns

    def stall(self, ns: float) -> None:
        """Charge controller stall time (retry backoff) to the clock.

        Unlike :meth:`advance`, this is safe *inside* an operation:
        ``end_op`` rewinds ``now`` to the operation's completion time,
        so mid-op waiting must extend ``_op_end`` instead.
        """
        if ns < 0:
            raise ValueError(f"cannot stall for {ns}")
        self.dram.stats.stalled_ns += ns
        if self._op_kind is None:
            self.now += ns
        else:
            self._op_end += ns

    def reset_measurement(self) -> float:
        """Zero the attribution counters (end of warm-up).

        DRAM bank/bus state and the clock are preserved; returns the
        measurement start time.
        """
        self.time_by_kind = {k: 0.0 for k in OpKind}
        self.ops_by_kind = {k: 0 for k in OpKind}
        self.readpath_latencies = []
        self.remote_accesses = 0
        self.dram.stats.__init__()
        busy = self.dram.channel_busy_ns
        busy[:] = [0.0] * len(busy)
        bank = self.dram.bank_busy_ns
        bank[:] = [0.0] * len(bank)
        return self.now

    # ------------------------------------------------------------ sink API

    def begin_op(self, kind: OpKind) -> None:
        if self._op_kind is not None:
            raise RuntimeError(f"nested op {kind} inside {self._op_kind}")
        self._op_kind = kind
        self._op_start = self.now
        self._op_end = self.now
        self._phase = 0
        self._phase_start = self.now

    def _arrival(self, phase: int) -> float:
        """Phase-ordered arrival time within the current operation.

        Phases: 0 = metadata read, 1 = data reads, 2 = data writes,
        3 = metadata write-back. Entering a later phase waits for every
        earlier request of the operation to complete.
        """
        if phase > self._phase:
            self._phase = phase
            self._phase_start = self._op_end
        return self._phase_start

    def data_access(self, bucket, slot, level, write, onchip=False, remote=False):
        if onchip:
            return
        if remote:
            self.remote_accesses += 1
        addr = self._data_base + self._data_off[bucket] + slot * self._block_bytes
        arrival = self._arrival(2 if write else 1)
        done = self.dram.access(addr, write, arrival)
        if done > self._op_end:
            self._op_end = done

    def metadata_access(self, bucket, level, write, onchip=False, blocks=1):
        if onchip:
            return
        arrival = self._arrival(3 if write else 0)
        addr = self._meta_base + bucket * self._meta_stride
        if blocks == 1:
            # Common case (metadata fits one 64B line): no burst loop.
            done = self.dram.access(addr, write, arrival)
            if done > self._op_end:
                self._op_end = done
            return
        bb = self._block_bytes
        done = self.dram.access_batch(
            [addr + i * bb for i in range(blocks)], write, arrival
        )
        if done > self._op_end:
            self._op_end = done

    def data_access_many(self, items, write):
        # The phase transition must happen only when the batch has an
        # *off-chip* item, exactly as in the scalar path: an all-onchip
        # batch leaves the phase untouched, so later lower-phase
        # requests still extend ``_op_end`` before the transition
        # samples it. Collecting addresses first is equivalent -- the
        # transition reads state no collection step mutates.
        base = self._data_base
        off = self._data_off
        bb = self._block_bytes
        addrs = []
        append = addrs.append
        remotes = 0
        for bucket, slot, level, onchip, remote in items:
            if onchip:
                continue
            if remote:
                remotes += 1
            append(base + off[bucket] + slot * bb)
        if not addrs:
            return
        self.remote_accesses += remotes
        arrival = self._arrival(2 if write else 1)
        done = self.dram.access_batch(addrs, write, arrival)
        if done > self._op_end:
            self._op_end = done

    def data_access_repeat(self, bucket, slot, level, count, write,
                           onchip=False, remote=False):
        if onchip or count <= 0:
            # Empty/on-chip batches must leave the phase untouched,
            # exactly like data_access_many over the same items.
            return
        arrival = self._arrival(2 if write else 1)
        if remote:
            self.remote_accesses += count
        addr = self._data_base + self._data_off[bucket] + slot * self._block_bytes
        done = self.dram.access_repeat(addr, count, write, arrival)
        if done > self._op_end:
            self._op_end = done

    def data_access_block(self, bucket, slots, level, write,
                          onchip=False, remote=False):
        if onchip or not slots:
            return
        arrival = self._arrival(2 if write else 1)
        if remote:
            self.remote_accesses += len(slots)
        base = self._data_base + self._data_off[bucket]
        bb = self._block_bytes
        done = self.dram.access_batch(
            [base + slot * bb for slot in slots], write, arrival
        )
        if done > self._op_end:
            self._op_end = done

    def metadata_access_many(self, items, write, blocks=1):
        # Same all-onchip phase rule as data_access_many; addresses are
        # collected first, then timed in one DRAM batch.
        base = self._meta_base
        stride = self._meta_stride
        bb = self._block_bytes
        addrs = []
        append = addrs.append
        if blocks == 1:
            for bucket, level, onchip in items:
                if not onchip:
                    append(base + bucket * stride)
        else:
            for bucket, level, onchip in items:
                if onchip:
                    continue
                addr = base + bucket * stride
                for _ in range(blocks):
                    append(addr)
                    addr += bb
        if not addrs:
            return
        arrival = self._arrival(3 if write else 0)
        done = self.dram.access_batch(addrs, write, arrival)
        if done > self._op_end:
            self._op_end = done

    def end_op(self) -> None:
        if self._op_kind is None:
            raise RuntimeError("end_op without begin_op")
        duration = self._op_end - self._op_start
        self.time_by_kind[self._op_kind] += duration
        self.ops_by_kind[self._op_kind] += 1
        if self._op_kind is OpKind.READ_PATH:
            # Online latency is the user-facing metric: each entry is
            # one request's memory critical path.
            self.readpath_latencies.append(duration)
        self.now = self._op_end
        self._op_kind = None


@dataclass
class SimConfig:
    """Knobs of one simulation run.

    ``robustness`` attaches the functional sealed data path (an
    :class:`~repro.oram.datastore.EncryptedTreeStore`) plus the
    recovery ladder; ``fault_plan`` additionally wraps that store in a
    :class:`~repro.faults.memory.FaultyMemory` injecting the plan's
    faults (armed only after warm-fill). A fault plan without an
    explicit robustness policy implies ``RobustnessConfig(integrity=
    True)`` -- injecting faults into a stack that cannot detect them is
    almost never what a caller wants.
    """

    timing: DramTiming = DDR3_1600
    mapping: AddressMapping = field(default_factory=AddressMapping)
    warmup_requests: int = 0
    warm_fill: bool = True
    seed: int = 0
    observers: Sequence[Any] = ()
    check_invariants: bool = False
    robustness: Optional[RobustnessConfig] = None
    fault_plan: Optional[Any] = None
    #: Transaction-pipeline depth (see repro.core.pipeline). Depth 1
    #: keeps the historical strictly-serial DramSink -- bit-identical
    #: to every committed baseline; depth > 1 overlaps path reads with
    #: reshuffle/eviction drain (timing only; logical results are
    #: identical at every depth).
    pipeline_depth: int = 1
    #: Outstanding-request window per DRAM channel in pipelined mode
    #: (0 disables admission bounding). Ignored at depth 1.
    dram_window: int = 32


class Simulation:
    """A stepwise, checkpointable simulation of one (scheme, trace) pair.

    The constructor builds the full stack (sinks, DRAM model, ORAM,
    optional sealed store and fault wrapper) and performs warm-fill;
    :meth:`step` services one trace request; :meth:`run` drives the
    loop to completion, optionally persisting a checkpoint every N
    requests. The whole object is picklable, and resuming a pickled
    instance continues bit-identically -- every random stream and every
    piece of timing state lives inside it.
    """

    def __init__(
        self,
        cfg: OramConfig,
        trace: Trace,
        sim: Optional[SimConfig] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        sim = sim or SimConfig()
        self.cfg = cfg
        self.trace = trace
        self.sim = sim
        self.telemetry = telemetry
        # The layout must account for the scheme's metadata record width.
        from repro.core.ab_oram import needs_extensions
        from repro.oram import metadata as md
        fields = (
            md.ab_metadata_fields(cfg) if needs_extensions(cfg)
            else md.ring_metadata_fields(cfg)
        )
        layout = TreeLayout(cfg, metadata_blocks=md.metadata_blocks(cfg, fields))
        depth = sim.pipeline_depth
        if depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {depth}")
        if depth > 1:
            from repro.core.pipeline import PipelinedDramSink
            self.dram = DramModel(
                sim.timing, sim.mapping,
                window=sim.dram_window if sim.dram_window > 0 else None,
            )
            # The pipelined sink records its own (overlapped) op spans,
            # so telemetry must not wrap it in a TracingSink -- the
            # wrapper would stamp spans off the serial-looking clock.
            self.dram_sink = PipelinedDramSink(
                layout, self.dram, depth=depth, telemetry=telemetry
            )
        else:
            self.dram = DramModel(sim.timing, sim.mapping)
            self.dram_sink = DramSink(layout, self.dram)
        # The controller talks straight to the DramSink: SimResult's
        # op/time breakdown comes from the sink itself, and a tee'd
        # CountingSink would cost one extra dispatch per memory touch.
        # Drivers that want protocol tallies attach their own
        # TeeSink(CountingSink(...), DramSink(...)) to a RingOram.
        # Telemetry wraps the DramSink in a forwarding TracingSink; the
        # DRAM model sees the identical request stream, so results stay
        # bit-identical (SimResult reads self.dram_sink either way).
        sink: MemorySink = self.dram_sink
        observers = sim.observers
        if telemetry is not None:
            if depth == 1:
                sink = telemetry.tracing_sink(self.dram_sink)
            if telemetry.observe_events:
                observers = list(observers) + [telemetry.observer()]
        robustness = sim.robustness
        if robustness is None and sim.fault_plan is not None:
            robustness = RobustnessConfig(integrity=True)
        self.robustness = robustness
        self.datastore = None
        self.faulty = None
        if robustness is not None:
            from repro.oram.datastore import EncryptedTreeStore
            master_key = hashlib.sha256(
                b"repro/simulate|" + str(sim.seed).encode()
            ).digest()
            self.datastore = EncryptedTreeStore(
                cfg, master_key, seed=sim.seed,
                with_integrity=robustness.integrity,
            )
            if sim.fault_plan is not None:
                # Imported lazily: repro.faults imports this module.
                from repro.faults.memory import FaultyMemory
                self.faulty = FaultyMemory(
                    self.datastore, sim.fault_plan, armed=False
                )
        self.oram = build_oram(
            cfg, sink=sink, seed=sim.seed, observers=observers,
            datastore=self.faulty if self.faulty is not None else self.datastore,
            robustness=robustness,
        )
        if sim.warm_fill:
            self.oram.warm_fill()
        if self.faulty is not None:
            self.faulty.armed = True
        self._i = 0
        self._measure_start = 0.0
        self._counted_from = 0

    # ------------------------------------------------------------- driving

    @property
    def position(self) -> int:
        """Index of the next trace request to service."""
        return self._i

    @property
    def done(self) -> bool:
        return self._i >= len(self.trace)

    def step(self) -> bool:
        """Service one trace request; returns False once exhausted."""
        i = self._i
        if i >= len(self.trace):
            return False
        if i == self.sim.warmup_requests and i > 0:
            self._measure_start = self.dram_sink.reset_measurement()
            self._counted_from = i
        self.dram_sink.advance(self.trace.cpu_gap_ns)
        req = self.trace.requests[i]
        if req.write and self.datastore is not None:
            # Traces carry no payloads; with a sealed data path attached
            # every write still needs bytes to encrypt. A deterministic
            # function of (block, position) keeps runs replayable.
            value = b"%16x%16x" % (req.block, i)
            self.oram.access(req.block, write=True, value=value)
        else:
            self.oram.access(req.block, write=req.write)
        self._i = i + 1
        t = self.telemetry
        if (t is not None and t.metrics_every
                and self._i % t.metrics_every == 0):
            t.record_snapshot(self.telemetry_record())
        return True

    def telemetry_record(self) -> Dict[str, Any]:
        """One periodic telemetry snapshot of the live protocol state."""
        oram = self.oram
        deadq: Dict[str, int] = {}
        rentals = 0
        if oram.ext is not None:
            deadq = {
                str(lv): len(q)
                for lv, q in sorted(oram.ext.queues.queues.items())
            }
            rentals = oram.ext.active_rentals()
        record = {
            "access": self._i,
            "ns": self.dram_sink.now,
            "stash_occupancy": oram.stash.occupancy,
            "stash_peak": oram.stash.peak_occupancy,
            "deadq_depth": deadq,
            "rentals_outstanding": rentals,
            "reshuffles_total": int(oram.store.reshuffles_by_level.sum()),
            "evictions": oram.evict_counter,
        }
        st = self.dram.stats
        record["dram"] = {
            "channel_busy_ns": [float(x) for x in self.dram.channel_busy_ns],
            "bank_busy_peak_ns": float(max(self.dram.bank_busy_ns)),
            "queue_depth_peak": st.queue_depth_peak,
            "queue_depth_mean": st.queue_depth_mean,
        }
        metrics = getattr(self.dram_sink, "pipeline_metrics", None)
        if metrics is not None:
            pipe = metrics()
            elapsed = self.dram_sink.now - self._measure_start
            pipe["dram_busy_frac"] = (
                sum(self.dram.channel_busy_ns)
                / len(self.dram.channel_busy_ns) / elapsed
                if elapsed > 0 else 0.0
            )
            record["pipeline"] = pipe
        if self.robustness is not None:
            # Recovery-ladder progress is state too: fault campaigns
            # watch detections/rebuilds climb and backoff stalls accrue
            # on the same timeline as stash occupancy.
            record["recovery"] = self.oram.robust.to_dict()
            record["dram_stalled_ns"] = self.dram.stats.stalled_ns
        return record

    def run(
        self,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
    ) -> SimResult:
        """Drive the trace to completion and return the result.

        With ``checkpoint_every`` > 0, the simulation pickles itself to
        ``checkpoint_path`` after every N serviced requests; a run
        resumed from any of those checkpoints finishes bit-identically.
        """
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and not checkpoint_path:
            raise ValueError("checkpoint_every requires a checkpoint path")
        if checkpoint_every and self.telemetry is not None:
            # Checkpoints pickle the whole Simulation; telemetry holds
            # open file handles and half-written streams.
            raise ValueError("telemetry cannot be combined with checkpointing")
        while self.step():
            if (checkpoint_every and not self.done
                    and self._i % checkpoint_every == 0):
                from repro.sim.checkpoint import save_checkpoint
                save_checkpoint(self, checkpoint_path)
        if self.robustness is not None:
            # Corruption caught in the last access's maintenance has no
            # later window to rebuild in; drain it before reporting.
            self.oram.flush_recovery()
        if self.sim.check_invariants:
            self.oram.check_invariants()
        if self.telemetry is not None:
            # Final state snapshot so short runs (< metrics_every) still
            # record at least one data point.
            self.telemetry.record_snapshot(self.telemetry_record())
        return self.result()

    # -------------------------------------------------------------- result

    def _robustness_block(self) -> Optional[Dict[str, Any]]:
        if self.robustness is None:
            return None
        block: Dict[str, Any] = {
            "config": self.robustness.to_dict(),
            "counters": self.oram.robust.to_dict(),
            "datastore": {
                "seals": self.datastore.seals,
                "opens": self.datastore.opens,
            },
            "backoff_stalled_ns": self.dram.stats.stalled_ns,
        }
        if self.datastore.integrity is not None:
            block["integrity"] = {
                "updates": self.datastore.integrity.updates,
                "verifications": self.datastore.integrity.verifications,
            }
        if self.faulty is not None:
            block["faults"] = self.faulty.summary()
        return block

    def result(self) -> SimResult:
        """Build the :class:`SimResult` for everything measured so far."""
        cfg = self.cfg
        oram = self.oram
        dram_sink = self.dram_sink
        dram = self.dram
        measured_requests = self._i - self._counted_from
        exec_ns = dram_sink.now - self._measure_start
        import numpy as _np
        lats = dram_sink.readpath_latencies
        readpath_p50 = float(_np.percentile(lats, 50)) if lats else 0.0
        readpath_p99 = float(_np.percentile(lats, 99)) if lats else 0.0
        return SimResult(
            scheme=cfg.name,
            trace=self.trace.name,
            requests=measured_requests,
            exec_ns=exec_ns,
            time_by_kind={str(k): v for k, v in dram_sink.time_by_kind.items()},
            ops_by_kind={str(k): v for k, v in dram_sink.ops_by_kind.items()},
            dram_reads=dram.stats.reads,
            dram_writes=dram.stats.writes,
            row_hit_rate=dram.stats.row_hit_rate,
            bytes_transferred=dram.stats.bytes_transferred,
            remote_accesses=dram_sink.remote_accesses,
            tree_bytes=cfg.tree_bytes,
            space_utilization=cfg.space_utilization,
            online_accesses=oram.online_accesses,
            background_accesses=oram.background_accesses,
            evictions=oram.evict_counter,
            stash_peak=oram.stash.peak_occupancy,
            reshuffles_by_level=[int(x) for x in oram.store.reshuffles_by_level],
            extension_ratio=(
                oram.ext.extension_ratio if oram.ext is not None else None
            ),
            dead_blocks=oram.store.total_dead_slots(),
            readpath_p50_ns=readpath_p50,
            readpath_p99_ns=readpath_p99,
            robustness=self._robustness_block(),
        )


def simulate(
    cfg: OramConfig,
    trace: Trace,
    sim: Optional[SimConfig] = None,
    telemetry: Optional[Any] = None,
) -> SimResult:
    """Replay ``trace`` against scheme ``cfg`` and measure everything."""
    return Simulation(cfg, trace, sim, telemetry=telemetry).run()
