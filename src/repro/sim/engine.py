"""The timing engine gluing ORAM controllers to the DRAM model.

:class:`DramSink` implements the controller-facing
:class:`~repro.oram.stats.MemorySink` interface. Every off-chip access
is translated to a physical address via the tree layout and issued to
the DRAM model; each protocol operation's wall time (max completion of
its requests minus its start) is attributed to its operation class,
producing the paper's Fig. 8c breakdown.

Timing approximations (see DESIGN.md section 4): each operation is a
chain of *phases* -- metadata read, data reads, data writes, metadata
write-back -- reflecting the protocol's real dependencies (the
controller cannot pick slots before the metadata arrives, and cannot
write a bucket before reading it). Requests within a phase are issued
together at the phase's start; bank and channel contention then
serializes them exactly as the timing model dictates. A phase starts
when the previous phase's slowest request completes, successive
operations serialize on the sink's clock, and CPU compute between LLC
misses advances the clock by the trace's ``cpu_gap_ns``.

``simulate`` runs one (scheme, trace) pair end to end with optional
warm-up exclusion and returns a :class:`~repro.sim.results.SimResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.ab_oram import build_oram
from repro.mem.address_map import AddressMapping
from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.mem.timing import DDR3_1600, DramTiming
from repro.oram.config import OramConfig
from repro.oram.stats import CountingSink, MemorySink, OpKind, TeeSink
from repro.sim.results import SimResult
from repro.traces.trace import Trace


class DramSink(MemorySink):
    """Forwards a controller's off-chip accesses to the DRAM model."""

    def __init__(self, layout: TreeLayout, dram: DramModel) -> None:
        self.layout = layout
        self.dram = dram
        # Address computation inlined from TreeLayout.data_addr /
        # meta_addr: plain-int arithmetic over a materialized offset
        # list, since this runs for every simulated memory request.
        self._data_base = layout.base_addr
        self._data_off = layout._offsets.tolist()
        self._block_bytes = layout.cfg.block_bytes
        self._meta_base = layout.meta_base
        self._meta_stride = layout.meta_stride
        self.now = 0.0
        self.time_by_kind: Dict[OpKind, float] = {k: 0.0 for k in OpKind}
        self.ops_by_kind: Dict[OpKind, int] = {k: 0 for k in OpKind}
        self.readpath_latencies: List[float] = []
        self.remote_accesses = 0
        self._op_kind: Optional[OpKind] = None
        self._op_start = 0.0
        self._op_end = 0.0
        self._phase = 0
        self._phase_start = 0.0

    # ------------------------------------------------------------- clocking

    def advance(self, ns: float) -> None:
        """Advance the clock (CPU compute between requests)."""
        if ns < 0:
            raise ValueError(f"cannot advance time by {ns}")
        self.now += ns

    def reset_measurement(self) -> float:
        """Zero the attribution counters (end of warm-up).

        DRAM bank/bus state and the clock are preserved; returns the
        measurement start time.
        """
        self.time_by_kind = {k: 0.0 for k in OpKind}
        self.ops_by_kind = {k: 0 for k in OpKind}
        self.readpath_latencies = []
        self.remote_accesses = 0
        self.dram.stats.__init__()
        self.dram.channel_busy_ns[:] = 0.0
        return self.now

    # ------------------------------------------------------------ sink API

    def begin_op(self, kind: OpKind) -> None:
        if self._op_kind is not None:
            raise RuntimeError(f"nested op {kind} inside {self._op_kind}")
        self._op_kind = kind
        self._op_start = self.now
        self._op_end = self.now
        self._phase = 0
        self._phase_start = self.now

    def _arrival(self, phase: int) -> float:
        """Phase-ordered arrival time within the current operation.

        Phases: 0 = metadata read, 1 = data reads, 2 = data writes,
        3 = metadata write-back. Entering a later phase waits for every
        earlier request of the operation to complete.
        """
        if phase > self._phase:
            self._phase = phase
            self._phase_start = self._op_end
        return self._phase_start

    def data_access(self, bucket, slot, level, write, onchip=False, remote=False):
        if onchip:
            return
        if remote:
            self.remote_accesses += 1
        addr = self._data_base + self._data_off[bucket] + slot * self._block_bytes
        arrival = self._arrival(2 if write else 1)
        done = self.dram.access(addr, write, arrival)
        if done > self._op_end:
            self._op_end = done

    def metadata_access(self, bucket, level, write, onchip=False, blocks=1):
        if onchip:
            return
        arrival = self._arrival(3 if write else 0)
        access = self.dram.access
        addr = self._meta_base + bucket * self._meta_stride
        end = self._op_end
        for _ in range(blocks):
            done = access(addr, write, arrival)
            if done > end:
                end = done
            addr += self._block_bytes
        self._op_end = end

    def data_access_many(self, items, write):
        # The phase transition must happen at the first *off-chip* item,
        # exactly as in the scalar path: an all-onchip batch leaves the
        # phase untouched, so later lower-phase requests still extend
        # ``_op_end`` before the transition samples it.
        arrival = None
        access = self.dram.access
        base = self._data_base
        off = self._data_off
        bb = self._block_bytes
        end = self._op_end
        for bucket, slot, level, onchip, remote in items:
            if onchip:
                continue
            if arrival is None:
                arrival = self._arrival(2 if write else 1)
                end = self._op_end
            if remote:
                self.remote_accesses += 1
            done = access(base + off[bucket] + slot * bb, write, arrival)
            if done > end:
                end = done
        self._op_end = end

    def metadata_access_many(self, items, write, blocks=1):
        arrival = None
        access = self.dram.access
        bb = self._block_bytes
        end = self._op_end
        for bucket, level, onchip in items:
            if onchip:
                continue
            if arrival is None:
                arrival = self._arrival(3 if write else 0)
                end = self._op_end
            addr = self._meta_base + bucket * self._meta_stride
            for _ in range(blocks):
                done = access(addr, write, arrival)
                if done > end:
                    end = done
                addr += bb
        self._op_end = end

    def end_op(self) -> None:
        if self._op_kind is None:
            raise RuntimeError("end_op without begin_op")
        duration = self._op_end - self._op_start
        self.time_by_kind[self._op_kind] += duration
        self.ops_by_kind[self._op_kind] += 1
        if self._op_kind is OpKind.READ_PATH:
            # Online latency is the user-facing metric: each entry is
            # one request's memory critical path.
            self.readpath_latencies.append(duration)
        self.now = self._op_end
        self._op_kind = None


@dataclass
class SimConfig:
    """Knobs of one simulation run."""

    timing: DramTiming = DDR3_1600
    mapping: AddressMapping = field(default_factory=AddressMapping)
    warmup_requests: int = 0
    warm_fill: bool = True
    seed: int = 0
    observers: Sequence[Any] = ()
    check_invariants: bool = False


def simulate(cfg: OramConfig, trace: Trace, sim: Optional[SimConfig] = None) -> SimResult:
    """Replay ``trace`` against scheme ``cfg`` and measure everything."""
    sim = sim or SimConfig()
    counting = CountingSink(cfg.levels)
    # The layout must account for the scheme's metadata record width.
    from repro.core.ab_oram import needs_extensions
    from repro.oram import metadata as md
    fields = (
        md.ab_metadata_fields(cfg) if needs_extensions(cfg)
        else md.ring_metadata_fields(cfg)
    )
    layout = TreeLayout(cfg, metadata_blocks=md.metadata_blocks(cfg, fields))
    dram = DramModel(sim.timing, sim.mapping)
    dram_sink = DramSink(layout, dram)
    sink = TeeSink(counting, dram_sink)
    oram = build_oram(
        cfg, sink=sink, seed=sim.seed, observers=sim.observers
    )
    if sim.warm_fill:
        oram.warm_fill()
    measure_start = 0.0
    counted_from = 0
    for i, req in enumerate(trace):
        if i == sim.warmup_requests and i > 0:
            measure_start = dram_sink.reset_measurement()
            counting.reset()
            counted_from = i
        dram_sink.advance(trace.cpu_gap_ns)
        oram.access(req.block, write=req.write)
    if sim.check_invariants:
        oram.check_invariants()
    measured_requests = len(trace) - counted_from
    exec_ns = dram_sink.now - measure_start
    import numpy as _np
    lats = dram_sink.readpath_latencies
    readpath_p50 = float(_np.percentile(lats, 50)) if lats else 0.0
    readpath_p99 = float(_np.percentile(lats, 99)) if lats else 0.0
    return SimResult(
        scheme=cfg.name,
        trace=trace.name,
        requests=measured_requests,
        exec_ns=exec_ns,
        time_by_kind={str(k): v for k, v in dram_sink.time_by_kind.items()},
        ops_by_kind={str(k): v for k, v in dram_sink.ops_by_kind.items()},
        dram_reads=dram.stats.reads,
        dram_writes=dram.stats.writes,
        row_hit_rate=dram.stats.row_hit_rate,
        bytes_transferred=dram.stats.bytes_transferred,
        remote_accesses=dram_sink.remote_accesses,
        tree_bytes=cfg.tree_bytes,
        space_utilization=cfg.space_utilization,
        online_accesses=oram.online_accesses,
        background_accesses=oram.background_accesses,
        evictions=oram.evict_counter,
        stash_peak=oram.stash.peak_occupancy,
        reshuffles_by_level=[int(x) for x in oram.store.reshuffles_by_level],
        extension_ratio=(
            oram.ext.extension_ratio if oram.ext is not None else None
        ),
        dead_blocks=oram.store.total_dead_slots(),
        readpath_p50_ns=readpath_p50,
        readpath_p99_ns=readpath_p99,
    )
