"""Simulation harness: trace -> ORAM controller -> DRAM timing.

- :mod:`repro.sim.engine` -- the :class:`DramSink` that turns a
  controller's access narration into DRAM timing, and ``simulate``,
  which replays one trace against one scheme.
- :mod:`repro.sim.results` -- result records and aggregation
  (normalization, geometric means).
- :mod:`repro.sim.runner` -- scheme x benchmark sweep drivers used by
  the figure benchmarks.
"""

from repro.sim.engine import DramSink, SimConfig, simulate
from repro.sim.results import SimResult, geomean, normalize
from repro.sim.runner import run_suite, run_schemes
from repro.sim.persist import load_results, results_to_csv, save_results

__all__ = [
    "load_results",
    "save_results",
    "results_to_csv",
    "DramSink",
    "SimConfig",
    "simulate",
    "SimResult",
    "geomean",
    "normalize",
    "run_suite",
    "run_schemes",
]
