"""Simulation harness: trace -> ORAM controller -> DRAM timing.

- :mod:`repro.sim.engine` -- the :class:`DramSink` that turns a
  controller's access narration into DRAM timing; ``simulate``, which
  replays one trace against one scheme; and :class:`Simulation`, the
  stepwise (and picklable) form behind checkpoint/resume.
- :mod:`repro.sim.checkpoint` -- atomic checkpoint save/load for
  crash-resumable runs.
- :mod:`repro.sim.results` -- result records and aggregation
  (normalization, geometric means).
- :mod:`repro.sim.runner` -- scheme x benchmark sweep drivers used by
  the figure benchmarks.
"""

from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.engine import DramSink, SimConfig, Simulation, simulate
from repro.sim.results import SimResult, geomean, normalize
from repro.sim.runner import run_suite, run_schemes
from repro.sim.persist import load_results, results_to_csv, save_results

__all__ = [
    "load_results",
    "save_results",
    "results_to_csv",
    "DramSink",
    "SimConfig",
    "Simulation",
    "simulate",
    "save_checkpoint",
    "load_checkpoint",
    "SimResult",
    "geomean",
    "normalize",
    "run_suite",
    "run_schemes",
]
