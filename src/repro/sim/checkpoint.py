"""Checkpoint/restore for the simulation engine.

A checkpoint is the whole :class:`~repro.sim.engine.Simulation` object,
pickled: controller state, stash, position map, every RNG, the DRAM
bank/bus clocks, the sealed memory image and the fault wrapper's
ledgers all live inside it, so a resumed run continues *bit-
identically* -- the final result equals the uninterrupted run's.

Writes are atomic (temp file + ``os.replace``) so a run killed while
checkpointing leaves the previous checkpoint intact. The file carries a
format version; loading anything else fails with a clear
:class:`ValueError` rather than an obscure unpickling error downstream.

Checkpoints are ordinary pickles: load them only from trusted paths
(the same trust level as the code itself).
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Union

from repro.sim.engine import Simulation

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = 1
_MAGIC = "repro-sim-checkpoint"


def save_checkpoint(simulation: Simulation, path: PathLike) -> None:
    """Atomically persist a simulation's complete state."""
    payload = {
        "magic": _MAGIC,
        "format": CHECKPOINT_FORMAT,
        "position": simulation.position,
        "simulation": simulation,
    }
    path = str(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def load_checkpoint(path: PathLike) -> Simulation:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError) as exc:
        raise ValueError(f"{path}: not a simulation checkpoint: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path}: not a simulation checkpoint")
    fmt = payload.get("format")
    if fmt != CHECKPOINT_FORMAT:
        raise ValueError(
            f"{path}: unsupported checkpoint format {fmt!r} "
            f"(expected {CHECKPOINT_FORMAT})"
        )
    simulation = payload.get("simulation")
    if not isinstance(simulation, Simulation):
        raise ValueError(
            f"{path}: checkpoint payload is "
            f"{type(simulation).__name__}, expected Simulation"
        )
    return simulation
