"""Sweep drivers: run scheme x benchmark matrices.

The figure benchmarks all reduce to "simulate every scheme against
every benchmark of a suite and aggregate"; this module centralizes that
loop (trace caching, per-scheme result maps) so each benchmark file
stays a thin description of its figure.

``run_suite(..., workers=N)`` fans the independent (scheme, benchmark)
cells over a process pool -- every cell is a self-contained simulation,
so sweeps scale linearly with cores. Observers cannot cross process
boundaries, so parallel runs require an observer-free ``SimConfig``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.oram.config import OramConfig
from repro.parallel.executor import Cell, run_cells
from repro.sim.engine import SimConfig, simulate
from repro.sim.results import SimResult
from repro.traces.parsec import parsec_benchmarks, parsec_trace
from repro.traces.spec import spec_benchmarks, spec_trace
from repro.traces.trace import Trace

TraceFactory = Callable[[str, int, int, int], Trace]

_SUITES: Dict[str, Callable] = {
    "spec": spec_trace,
    "parsec": parsec_trace,
}

_SUITE_NAMES: Dict[str, Callable] = {
    "spec": spec_benchmarks,
    "parsec": parsec_benchmarks,
}


def suite_benchmarks(suite: str) -> List[str]:
    """Benchmark names of a suite ("spec" or "parsec")."""
    if suite not in _SUITE_NAMES:
        raise KeyError(f"unknown suite {suite!r}")
    return _SUITE_NAMES[suite]()


def make_trace(
    suite: str, name: str, n_oram_blocks: int, n_requests: int, seed: int = 0
) -> Trace:
    if suite not in _SUITES:
        raise KeyError(f"unknown suite {suite!r}")
    return _SUITES[suite](name, n_oram_blocks, n_requests, seed=seed)


def run_schemes(
    schemes: Sequence[OramConfig],
    trace: Trace,
    sim: Optional[SimConfig] = None,
) -> Dict[str, SimResult]:
    """Simulate one trace against several schemes; keyed by scheme name."""
    return {cfg.name: simulate(cfg, trace, sim) for cfg in schemes}


def _run_cell(args: Tuple[OramConfig, Trace, SimConfig]) -> SimResult:
    """Picklable worker entry for one (scheme, trace) simulation."""
    cfg, trace, sim = args
    return simulate(cfg, trace, sim)


def run_suite(
    schemes: Sequence[OramConfig],
    suite: str = "spec",
    benchmarks: Optional[Sequence[str]] = None,
    n_requests: int = 2000,
    warmup_requests: int = 0,
    seed: int = 0,
    sim: Optional[SimConfig] = None,
    workers: int = 1,
) -> Dict[str, Dict[str, SimResult]]:
    """Scheme x benchmark sweep; returns scheme -> benchmark -> result.

    All schemes must share the same block count so one trace replays
    identically against each of them (the paper's methodology).
    ``workers > 1`` distributes the cells over a process pool; results
    are bit-identical to the serial run (each cell is seeded
    independently of execution order).
    """
    if not schemes:
        raise ValueError("need at least one scheme")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n_blocks = schemes[0].n_real_blocks
    for cfg in schemes[1:]:
        if cfg.n_real_blocks != n_blocks:
            raise ValueError(
                f"schemes disagree on protected blocks: "
                f"{cfg.name}={cfg.n_real_blocks} vs {schemes[0].name}={n_blocks}"
            )
    names = list(benchmarks) if benchmarks else suite_benchmarks(suite)
    base_sim = sim or SimConfig()
    if workers > 1 and base_sim.observers:
        raise ValueError(
            "observers cannot cross process boundaries; run with workers=1"
        )
    run_sim = SimConfig(
        timing=base_sim.timing,
        mapping=base_sim.mapping,
        warmup_requests=warmup_requests or base_sim.warmup_requests,
        warm_fill=base_sim.warm_fill,
        seed=base_sim.seed,
        observers=base_sim.observers,
        check_invariants=base_sim.check_invariants,
        pipeline_depth=base_sim.pipeline_depth,
        dram_window=base_sim.dram_window,
    )
    cells: List[Tuple[str, str, Tuple[OramConfig, Trace, SimConfig]]] = []
    for bench in names:
        trace = make_trace(suite, bench, n_blocks, n_requests, seed=seed)
        for cfg in schemes:
            cells.append((cfg.name, bench, (cfg, trace, run_sim)))
    results: Dict[str, Dict[str, SimResult]] = {cfg.name: {} for cfg in schemes}
    outputs = run_cells(
        _run_cell,
        [Cell(f"{name}/{bench}", args) for name, bench, args in cells],
        workers=workers,
    )
    for (scheme_name, bench, _), res in zip(cells, outputs):
        if not res.ok:
            # run_suite callers expect a complete result map; a failed
            # cell here is a bug, not a sweep condition to tolerate.
            raise RuntimeError(f"simulation cell {res.key} failed:\n{res.error}")
        results[scheme_name][bench] = res.value
    return results
