"""Result records and aggregation helpers.

The paper reports per-benchmark bars plus a geometric-mean bar, with
most metrics normalized to the Baseline scheme; :func:`normalize` and
:func:`geomean` reproduce that presentation from raw
:class:`SimResult` records.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional


@dataclass
class SimResult:
    """Everything measured by one (scheme, trace) simulation."""

    scheme: str
    trace: str
    requests: int
    exec_ns: float
    time_by_kind: Dict[str, float]
    ops_by_kind: Dict[str, int]
    dram_reads: int
    dram_writes: int
    row_hit_rate: float
    bytes_transferred: int
    remote_accesses: int
    tree_bytes: int
    space_utilization: float
    online_accesses: int
    background_accesses: int
    evictions: int
    stash_peak: int
    reshuffles_by_level: List[int]
    extension_ratio: Optional[float]
    dead_blocks: int
    readpath_p50_ns: float = 0.0
    readpath_p99_ns: float = 0.0
    #: Robustness ledger (recovery counters, fault injection summary,
    #: integrity statistics); None for runs without a robustness policy.
    robustness: Optional[Dict[str, Any]] = None

    @property
    def bandwidth_gbps(self) -> float:
        """Consumed DRAM bandwidth over the measured window (GB/s)."""
        if self.exec_ns <= 0:
            return 0.0
        return self.bytes_transferred / self.exec_ns

    @property
    def ns_per_access(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.exec_ns / self.requests

    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["bandwidth_gbps"] = self.bandwidth_gbps
        d["ns_per_access"] = self.ns_per_access
        return d


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-benchmark aggregate)."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize(
    results: Mapping[str, Mapping[str, SimResult]],
    metric: str,
    baseline: str = "Baseline",
) -> Dict[str, Dict[str, float]]:
    """Per-trace normalization of ``metric`` against ``baseline``.

    ``results`` is scheme -> trace -> SimResult; the return value is
    scheme -> trace -> metric(scheme)/metric(baseline), with a
    ``"geomean"`` entry per scheme.
    """
    if baseline not in results:
        raise KeyError(f"baseline scheme {baseline!r} missing from results")
    base = results[baseline]
    out: Dict[str, Dict[str, float]] = {}
    for scheme, by_trace in results.items():
        ratios: Dict[str, float] = {}
        for trace, res in by_trace.items():
            if trace not in base:
                raise KeyError(f"trace {trace!r} missing for baseline")
            denom = getattr(base[trace], metric)
            num = getattr(res, metric)
            if callable(denom) or callable(num):
                raise TypeError(f"{metric} is not a plain attribute")
            ratios[trace] = num / denom if denom else float("nan")
        ratios["geomean"] = geomean(
            [v for k, v in ratios.items() if k != "geomean"]
        )
        out[scheme] = ratios
    return out


def breakdown_fractions(result: SimResult) -> Dict[str, float]:
    """Fraction of memory time per operation class (Fig. 8c stacking)."""
    total = sum(result.time_by_kind.values())
    if total <= 0:
        return {k: 0.0 for k in result.time_by_kind}
    return {k: v / total for k, v in result.time_by_kind.items()}
