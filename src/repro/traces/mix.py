"""Trace composition: multi-phase and interleaved workloads.

Real programs run in phases (pointer-chasing here, streaming there);
multiprogrammed servers interleave several request streams into the
memory system. These helpers build such workloads out of existing
traces so the simulator can study ORAM behaviour under phase changes
and contention:

- :func:`concat` -- phases back to back (MPKI becomes the
  request-weighted blend);
- :func:`interleave` -- round-robin merge weighted by each stream's
  request rate (MPKI), the standard way multiprogrammed traces are
  assembled for trace-driven memory simulators.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.traces.trace import Trace, TraceRequest


def _blend_mpki(traces: Sequence[Trace], weights: Sequence[float]):
    total = sum(weights)
    read = sum(t.read_mpki * w for t, w in zip(traces, weights)) / total
    write = sum(t.write_mpki * w for t, w in zip(traces, weights)) / total
    return read, write


def concat(traces: Sequence[Trace], name: str = "") -> Trace:
    """Run the given traces as consecutive phases of one workload."""
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace")
    requests: List[TraceRequest] = []
    for t in traces:
        requests.extend(t.requests)
    weights = [len(t) for t in traces]
    read, write = _blend_mpki(traces, weights)
    return Trace(
        name=name or "+".join(t.name for t in traces),
        requests=requests,
        read_mpki=read,
        write_mpki=write,
        suite="mix",
    )


def interleave(traces: Sequence[Trace], name: str = "") -> Trace:
    """Merge traces as co-running streams.

    Streams are merged in proportion to their request rates: a stream
    with twice the MPKI injects twice as often, which is how
    multiprogrammed memory traces interleave in time. The merge stops
    when the first stream runs dry (equal pressure on every stream),
    and the result's MPKI is the *sum* of the streams' (the memory
    system sees all of them).
    """
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace")
    if len(traces) == 1:
        return traces[0]
    rates = [t.total_mpki for t in traces]
    # Credit-based weighted round-robin.
    credits = [0.0] * len(traces)
    cursors = [0] * len(traces)
    requests: List[TraceRequest] = []
    while True:
        for i, t in enumerate(traces):
            credits[i] += rates[i]
        progressed = False
        for i, t in enumerate(traces):
            while credits[i] >= max(rates) and cursors[i] < len(t.requests):
                requests.append(t.requests[cursors[i]])
                cursors[i] += 1
                credits[i] -= max(rates)
                progressed = True
        if any(cursors[i] >= len(t.requests) for i, t in enumerate(traces)):
            break
        if not progressed:
            break
    read = sum(t.read_mpki for t in traces)
    write = sum(t.write_mpki for t in traces)
    return Trace(
        name=name or "||".join(t.name for t in traces),
        requests=requests,
        read_mpki=read,
        write_mpki=write,
        suite="mix",
    )
