"""Trace containers.

A :class:`Trace` is a finite sequence of :class:`TraceRequest` items
(block-granular reads/writes into the protected address space) plus the
workload metadata the timing model needs: the LLC miss rate (MPKI)
determines how many CPU nanoseconds elapse between consecutive ORAM
accesses -- low-MPKI benchmarks hide more of the ORAM latency, which is
why the paper's per-benchmark slowdowns differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

#: Simulated core: 4-wide fetch (Table III) at 3.2 GHz.
FETCH_WIDTH = 4
CORE_GHZ = 3.2


@dataclass(frozen=True)
class TraceRequest:
    """One LLC-miss memory request at 64B block granularity."""

    block: int
    write: bool


@dataclass
class Trace:
    """A named, replayable request sequence."""

    name: str
    requests: List[TraceRequest]
    read_mpki: float
    write_mpki: float
    suite: str = "synthetic"

    def __post_init__(self) -> None:
        if self.read_mpki < 0 or self.write_mpki < 0:
            raise ValueError("MPKI values must be non-negative")
        if self.total_mpki <= 0:
            raise ValueError(f"trace {self.name}: total MPKI must be positive")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[TraceRequest]:
        return iter(self.requests)

    @property
    def total_mpki(self) -> float:
        return self.read_mpki + self.write_mpki

    @property
    def write_fraction(self) -> float:
        return self.write_mpki / self.total_mpki

    @property
    def instructions_per_access(self) -> float:
        """Committed instructions between consecutive LLC misses."""
        return 1000.0 / self.total_mpki

    @property
    def cpu_gap_ns(self) -> float:
        """CPU time between consecutive ORAM accesses.

        The core retires ``FETCH_WIDTH`` instructions per cycle at
        ``CORE_GHZ``; the window between misses is pure compute.
        """
        return self.instructions_per_access / (FETCH_WIDTH * CORE_GHZ)

    def truncated(self, n: int) -> "Trace":
        """A copy holding only the first ``n`` requests."""
        return Trace(
            name=self.name,
            requests=self.requests[:n],
            read_mpki=self.read_mpki,
            write_mpki=self.write_mpki,
            suite=self.suite,
        )
