"""PARSEC workload models (the paper's generalizability study, Fig. 15).

The paper does not tabulate PARSEC MPKIs, so the values below are
calibrated from the PARSEC characterization literature (Bienia's
thesis): canneal and streamcluster are the memory-bound outliers,
swaptions/blackscholes are compute-bound, the rest sit in between. The
paper's point -- that AB-ORAM's space saving is application-independent
and its slowdown stays at DR~3% / AB~4% -- only needs this qualitative
spread of request rates, not exact rates.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

from repro.traces.generator import SyntheticTraceGenerator
from repro.traces.trace import Trace

#: name -> (read MPKI, write MPKI), calibrated (see module docstring).
PARSEC: Dict[str, Tuple[float, float]] = {
    "blackscholes": (0.3, 0.1),
    "bodytrack": (0.6, 0.2),
    "canneal": (12.5, 1.8),
    "dedup": (2.3, 1.6),
    "facesim": (3.1, 1.9),
    "ferret": (2.8, 0.9),
    "fluidanimate": (2.4, 1.3),
    "freqmine": (1.4, 0.5),
    "raytrace": (1.2, 0.3),
    "streamcluster": (9.8, 0.7),
    "swaptions": (0.2, 0.05),
    "vips": (1.7, 1.1),
}


def parsec_benchmarks() -> List[str]:
    return list(PARSEC)


def parsec_trace(
    name: str,
    n_oram_blocks: int,
    n_requests: int,
    seed: int = 0,
    working_set_fraction: float = 0.5,
) -> Trace:
    """Synthesize the named PARSEC benchmark's trace."""
    if name not in PARSEC:
        raise KeyError(
            f"unknown PARSEC benchmark {name!r}; choose from {parsec_benchmarks()}"
        )
    read_mpki, write_mpki = PARSEC[name]
    gen = SyntheticTraceGenerator(
        n_oram_blocks=n_oram_blocks,
        working_set_fraction=working_set_fraction,
        seed=seed,
    )
    return gen.generate(
        name,
        n_requests,
        read_mpki=read_mpki,
        write_mpki=write_mpki,
        suite="PARSEC",
        seed=seed ^ zlib.crc32(name.encode()),
    )
