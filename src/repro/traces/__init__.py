"""Workload substrate: synthetic SPEC CPU2017 / PARSEC memory traces.

The paper drives USIMM with Pin-collected traces of SPEC CPU2017 (and
PARSEC for the generalizability study). Those traces are proprietary;
per DESIGN.md section 4 we substitute generators parameterized by the
paper's own published per-benchmark read/write MPKI (its Table IV),
with zipf + stride locality over a private working set. The three
trace properties the ORAM schemes are sensitive to -- request rate,
read/write mix, and short-term reuse (stash hits) -- are reproduced;
everything else is randomized away by the ORAM itself.
"""

from repro.traces.trace import Trace, TraceRequest
from repro.traces.generator import SyntheticTraceGenerator
from repro.traces.spec import SPEC_CPU2017, spec_trace, spec_benchmarks
from repro.traces.parsec import PARSEC, parsec_trace, parsec_benchmarks
from repro.traces.io import load_trace, save_trace
from repro.traces.mix import concat, interleave

__all__ = [
    "load_trace",
    "save_trace",
    "concat",
    "interleave",
    "Trace",
    "TraceRequest",
    "SyntheticTraceGenerator",
    "SPEC_CPU2017",
    "spec_trace",
    "spec_benchmarks",
    "PARSEC",
    "parsec_trace",
    "parsec_benchmarks",
]
