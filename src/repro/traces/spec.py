"""SPEC CPU2017 workload models.

The per-benchmark read/write MPKI values are the paper's own Table IV
(its Pin measurements over 40M-access traces); the synthetic generator
turns them into request streams. Benchmarks whose read and write MPKI
are both reported as 0/0.0x are floored at 0.01 MPKI so the request
rate stays defined (the paper's `lee` row is 0.01/0.01).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

from repro.traces.generator import SyntheticTraceGenerator
from repro.traces.trace import Trace

#: name -> (read MPKI, write MPKI); verbatim from the paper's Table IV.
SPEC_CPU2017: Dict[str, Tuple[float, float]] = {
    # integer
    "gcc": (0.1, 0.5),
    "mcf": (28.2, 0.2),
    "omn": (0.3, 0.06),
    "xal": (0.1, 0.2),
    "x264": (1.6, 2.1),
    "dee": (0.01, 14.7),
    "xz": (0.01, 15.5),
    "lee": (0.01, 0.01),
    # floating point
    "bwa": (0.01, 4.1),
    "lbm": (0.01, 15.3),
    "wrf": (0.1, 1.0),
    "cam": (0.01, 7.1),
    "ima": (0.2, 2.1),
    "fot": (0.03, 1.56),
    "rom": (0.01, 13.7),
    "nab": (0.1, 0.2),
    "cac": (0.01, 5.4),
}


def spec_benchmarks() -> List[str]:
    """Benchmark names in the paper's Table IV order."""
    return list(SPEC_CPU2017)


def spec_trace(
    name: str,
    n_oram_blocks: int,
    n_requests: int,
    seed: int = 0,
    working_set_fraction: float = 0.5,
) -> Trace:
    """Synthesize the named SPEC benchmark's trace."""
    if name not in SPEC_CPU2017:
        raise KeyError(
            f"unknown SPEC benchmark {name!r}; choose from {spec_benchmarks()}"
        )
    read_mpki, write_mpki = SPEC_CPU2017[name]
    gen = SyntheticTraceGenerator(
        n_oram_blocks=n_oram_blocks,
        working_set_fraction=working_set_fraction,
        seed=seed,
    )
    return gen.generate(
        name,
        n_requests,
        read_mpki=read_mpki,
        write_mpki=write_mpki,
        suite="SPEC CPU2017",
        seed=seed ^ zlib.crc32(name.encode()),
    )
