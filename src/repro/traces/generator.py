"""Synthetic memory-trace generation.

Produces block-granular LLC-miss streams with the locality structure
real workloads exhibit past the cache hierarchy:

- a private *working set* of ``working_set_blocks`` blocks inside the
  protected address space;
- *zipf-distributed* popularity (hot blocks are re-touched; this is
  what produces ORAM stash hits);
- *stride runs*: with probability ``stride_prob`` the next request
  continues a sequential run (streaming phases of compute kernels);
- a read/write mix taken from the benchmark's read/write MPKI split.

The generator is deterministic per (name, seed): two simulations of
different ORAM schemes replay byte-identical request streams, so their
timing difference is attributable to the scheme alone.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.traces.trace import Trace, TraceRequest


class SyntheticTraceGenerator:
    """Configurable workload-model trace factory."""

    def __init__(
        self,
        n_oram_blocks: int,
        working_set_fraction: float = 0.5,
        zipf_alpha: float = 0.8,
        stride_prob: float = 0.35,
        stride_run_mean: float = 8.0,
        seed: int = 0,
    ) -> None:
        if n_oram_blocks < 1:
            raise ValueError("n_oram_blocks must be >= 1")
        if not 0 < working_set_fraction <= 1.0:
            raise ValueError("working_set_fraction must be in (0, 1]")
        if not 0 <= stride_prob < 1.0:
            raise ValueError("stride_prob must be in [0, 1)")
        if zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")
        self.n_oram_blocks = n_oram_blocks
        self.working_set = max(1, int(n_oram_blocks * working_set_fraction))
        self.zipf_alpha = zipf_alpha
        self.stride_prob = stride_prob
        self.stride_run_mean = stride_run_mean
        self.seed = seed

    def _zipf_cdf(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_alpha)
        cdf = np.cumsum(weights)
        return cdf / cdf[-1]

    def generate(
        self,
        name: str,
        n_requests: int,
        read_mpki: float,
        write_mpki: float,
        suite: str = "synthetic",
        seed: Optional[int] = None,
    ) -> Trace:
        """Materialize a trace of ``n_requests`` block requests."""
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        rng = np.random.default_rng(
            self.seed if seed is None else seed
        )
        # Rank -> block mapping scrambles the hot set across the space.
        perm = rng.permutation(self.n_oram_blocks)[: self.working_set]
        cdf = self._zipf_cdf(self.working_set)
        write_frac = write_mpki / (read_mpki + write_mpki)
        requests: List[TraceRequest] = []
        stride_left = 0
        cursor = 0
        while len(requests) < n_requests:
            if stride_left > 0:
                cursor = (cursor + 1) % self.working_set
                stride_left -= 1
            else:
                u = rng.random()
                cursor = int(np.searchsorted(cdf, u))
                if rng.random() < self.stride_prob:
                    stride_left = int(rng.geometric(1.0 / self.stride_run_mean))
            block = int(perm[cursor])
            write = bool(rng.random() < write_frac)
            requests.append(TraceRequest(block=block, write=write))
        return Trace(
            name=name,
            requests=requests,
            read_mpki=read_mpki,
            write_mpki=write_mpki,
            suite=suite,
        )
