"""Trace file I/O in a USIMM-compatible text format.

USIMM consumes traces of the form::

    <gap> <R|W> <hex byte address>

where ``gap`` is the number of non-memory instructions since the
previous request. This module writes our synthetic traces in that
format (so they can drive the original simulator) and reads external
traces back (so Pin-collected traces can drive this one). On read, the
per-request gaps are folded back into an aggregate MPKI, and byte
addresses are reduced to 64B block ids within the protected space.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.traces.trace import Trace, TraceRequest

PathLike = Union[str, Path]


def save_trace(trace: Trace, path: PathLike, block_bytes: int = 64) -> int:
    """Write ``trace`` in USIMM text format; returns lines written.

    The instruction gap is the trace's average (our generator models
    rate, not per-request jitter).
    """
    path = Path(path)
    gap = max(1, round(trace.instructions_per_access))
    lines = []
    for req in trace:
        op = "W" if req.write else "R"
        lines.append(f"{gap} {op} 0x{req.block * block_bytes:x}")
    path.write_text("\n".join(lines) + "\n")
    return len(lines)


def load_trace(
    path: PathLike,
    name: str,
    n_oram_blocks: int,
    block_bytes: int = 64,
    suite: str = "file",
) -> Trace:
    """Parse a USIMM-format trace file.

    Addresses are folded into ``[0, n_oram_blocks)`` (traces collected
    on arbitrary address spaces must land inside the protected range);
    MPKI is recovered from the mean instruction gap and the read/write
    mix from the opcode column.
    """
    path = Path(path)
    requests: List[TraceRequest] = []
    total_gap = 0
    reads = 0
    writes = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise ValueError(f"{path}:{lineno}: expected '<gap> <R|W> <addr>'")
        try:
            gap = int(parts[0])
            addr = int(parts[2], 16)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None
        op = parts[1].upper()
        if op not in ("R", "W"):
            raise ValueError(f"{path}:{lineno}: bad op {parts[1]!r}")
        if gap < 0 or addr < 0:
            raise ValueError(f"{path}:{lineno}: negative gap or address")
        write = op == "W"
        block = (addr // block_bytes) % n_oram_blocks
        requests.append(TraceRequest(block=block, write=write))
        total_gap += gap
        if write:
            writes += 1
        else:
            reads += 1
    if not requests:
        raise ValueError(f"{path}: no requests found")
    mean_gap = max(1.0, total_gap / len(requests))
    total_mpki = 1000.0 / mean_gap
    read_mpki = total_mpki * reads / len(requests)
    write_mpki = total_mpki * writes / len(requests)
    # MPKI components must stay positive for the Trace invariants; an
    # all-read or all-write trace keeps an epsilon on the other side.
    eps = total_mpki * 1e-9
    return Trace(
        name=name,
        requests=requests,
        read_mpki=max(read_mpki, eps),
        write_mpki=max(write_mpki, eps),
        suite=suite,
    )
