"""Request and completion records exchanged by the serving layers.

A :class:`Request` is one client operation with an arrival timestamp;
the clock domain is the caller's choice (simulated DRAM nanoseconds in
:mod:`repro.serve.replay`, wall nanoseconds in
:mod:`repro.serve.server`). A :class:`Completion` is the scheduler's
answer: the value (for gets), the exact service window on the same
clock, and how the request was served (its own oblivious accesses, a
dedup hit off a batch-mate's access, or a coalesced write).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Operation kinds (string constants keep records JSON-friendly).
GET = "get"
PUT = "put"
DELETE = "delete"

OPS = (GET, PUT, DELETE)


@dataclass
class Request:
    """One client operation waiting to be served."""

    rid: int
    op: str
    key: bytes
    value: Optional[bytes] = None
    arrival_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r} (expected one of {OPS})")
        if self.op == PUT and self.value is None:
            raise ValueError(f"put request {self.rid} carries no value")


@dataclass
class Completion:
    """The scheduler's answer to one request.

    ``start_ns`` is when the operation that produced this answer began
    (for a dedup hit or coalesced write, the *shared* operation's
    start); ``done_ns`` is when the answer became available. Queueing
    time is ``start_ns - arrival_ns``, service time ``done_ns -
    start_ns``, end-to-end latency ``done_ns - arrival_ns``.
    """

    rid: int
    op: str
    key: bytes
    value: Optional[bytes]
    ok: bool
    arrival_ns: float
    start_ns: float
    done_ns: float
    accesses: int = 0
    dedup: bool = False
    coalesced: bool = False
    #: Host wall time spent in the executing operation (seconds);
    #: shared by every waiter of a deduped access. Host-dependent --
    #: never part of the deterministic report fields.
    wall_s: float = field(default=0.0, repr=False)

    @property
    def latency_ns(self) -> float:
        return self.done_ns - self.arrival_ns

    @property
    def queue_ns(self) -> float:
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.done_ns - self.start_ns
