"""Request and completion records exchanged by the serving layers.

A :class:`Request` is one client operation with an arrival timestamp;
the clock domain is the caller's choice (simulated DRAM nanoseconds in
:mod:`repro.serve.replay`, wall nanoseconds in
:mod:`repro.serve.server`). A :class:`Completion` is the scheduler's
answer: the value (for gets), the exact service window on the same
clock, and how the request was served (its own oblivious accesses, a
dedup hit off a batch-mate's access, or a coalesced write).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Operation kinds (string constants keep records JSON-friendly).
GET = "get"
PUT = "put"
DELETE = "delete"

OPS = (GET, PUT, DELETE)

#: Completion statuses. ``OK`` is a served answer (including degraded
#: serves); the rest are the resilience layer's explicit failure modes:
#: ``TIMED_OUT`` -- the per-request deadline passed before an answer;
#: ``SHED``      -- admission control rejected the request (bounded
#:                  queue or full degraded-mode write journal);
#: ``FAILED``    -- the request-scope retry budget ran out while the
#:                  store could not serve it (degraded-mode read of a
#:                  non-resident key).
OK = "ok"
TIMED_OUT = "timed_out"
SHED = "shed"
FAILED = "failed"

STATUSES = (OK, TIMED_OUT, SHED, FAILED)


@dataclass
class Request:
    """One client operation waiting to be served."""

    rid: int
    op: str
    key: bytes
    value: Optional[bytes] = None
    arrival_ns: float = 0.0
    #: Absolute deadline on the service clock (``None`` = no deadline).
    #: Set by the resilience layer; the scheduler refuses to *start*
    #: serving a request whose deadline already passed.
    deadline_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r} (expected one of {OPS})")
        if self.op == PUT and self.value is None:
            raise ValueError(f"put request {self.rid} carries no value")


@dataclass
class Completion:
    """The scheduler's answer to one request.

    ``start_ns`` is when the operation that produced this answer began
    (for a dedup hit or coalesced write, the *shared* operation's
    start); ``done_ns`` is when the answer became available. Queueing
    time is ``start_ns - arrival_ns``, service time ``done_ns -
    start_ns``, end-to-end latency ``done_ns - arrival_ns``.
    """

    rid: int
    op: str
    key: bytes
    value: Optional[bytes]
    ok: bool
    arrival_ns: float
    start_ns: float
    done_ns: float
    accesses: int = 0
    dedup: bool = False
    coalesced: bool = False
    #: One of :data:`STATUSES`. ``ok`` covers every served answer (the
    #: boolean ``ok`` field still distinguishes hit/miss); the other
    #: values are terminal failures stamped by the resilience layer.
    status: str = OK
    #: Served without an oblivious access while the store ran degraded
    #: (stash-resident payloads or the write journal answered it).
    degraded: bool = False
    #: Host wall time spent in the executing operation (seconds);
    #: shared by every waiter of a deduped access. Host-dependent --
    #: never part of the deterministic report fields.
    wall_s: float = field(default=0.0, repr=False)

    @property
    def latency_ns(self) -> float:
        return self.done_ns - self.arrival_ns

    @property
    def queue_ns(self) -> float:
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        return self.done_ns - self.start_ns
