"""A thread-pool server front-end over the batching scheduler.

Clients (any number of threads) submit operations and receive
:class:`concurrent.futures.Future` objects; a single scheduler thread
drains the queue in admission batches and services them through
:class:`~repro.serve.scheduler.BatchScheduler`. The ORAM still admits
exactly one oblivious access at a time -- the server's concurrency is
in *admission and batching*, which is precisely where a single-
controller oblivious store can win: queued same-key reads collapse
into one access, superseded writes are acknowledged for free.

The clock is wall nanoseconds (``time.perf_counter_ns``), so
completions report real queueing and service windows; simulated-ns
serving lives in :mod:`repro.serve.replay`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional

from repro.app.kvstore import ObliviousKV
from repro.serve.request import DELETE, GET, PUT, Completion, Request
from repro.serve.scheduler import BatchScheduler


class KVServer:
    """Concurrent front-end: many submitters, one serving thread."""

    def __init__(
        self,
        kv: ObliviousKV,
        policy: str = "batch",
        max_batch: int = 32,
        seed: int = 0,
        join_timeout_s: float = 30.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if join_timeout_s <= 0:
            raise ValueError(
                f"join_timeout_s must be positive, got {join_timeout_s}"
            )
        self.max_batch = max_batch
        self.join_timeout_s = join_timeout_s
        #: The exception that killed the serve loop, if it died.
        self._worker_error: Optional[BaseException] = None
        self._t0 = time.perf_counter_ns()
        self.scheduler = BatchScheduler(
            kv, policy=policy, seed=seed, clock=self._clock,
        )
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: List[Request] = []
        self._futures: Dict[int, "Future[Completion]"] = {}
        self._next_rid = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve_loop, name="kv-server", daemon=True,
        )
        self._thread.start()

    def _clock(self) -> float:
        """Wall clock in ns, zeroed at server start."""
        return float(time.perf_counter_ns() - self._t0)

    # ------------------------------------------------------------- clients

    def submit(
        self, op: str, key: bytes, value: Optional[bytes] = None
    ) -> "Future[Completion]":
        """Enqueue one operation; resolves to its :class:`Completion`."""
        future: "Future[Completion]" = Future()
        with self._work:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._worker_error is not None:
                raise RuntimeError(
                    "server serve loop died"
                ) from self._worker_error
            rid = self._next_rid
            self._next_rid = rid + 1
            self._queue.append(Request(
                rid=rid, op=op, key=key, value=value,
                arrival_ns=self._clock(),
            ))
            self._futures[rid] = future
            self._work.notify()
        return future

    def get(self, key: bytes) -> Optional[bytes]:
        """Blocking convenience get."""
        return self.submit(GET, key).result().value

    def put(self, key: bytes, value: bytes) -> Completion:
        """Blocking convenience put."""
        return self.submit(PUT, key, value).result()

    def delete(self, key: bytes) -> bool:
        """Blocking convenience delete; True if the key existed."""
        return self.submit(DELETE, key).result().ok

    # ------------------------------------------------------------- serving

    def _serve_loop(self) -> None:
        try:
            self._serve_batches()
        except BaseException as exc:   # noqa: BLE001 - recorded, fanned out
            # The loop itself died (scheduler bug, broken clock, ...).
            # Record the cause and fail everything still pending so no
            # client -- present or future -- blocks on a dead worker.
            with self._work:
                self._worker_error = exc
                self._fail_pending_locked(exc)
                self._work.notify_all()

    def _serve_batches(self) -> None:
        while True:
            with self._work:
                while not self._queue and not self._closed:
                    self._work.wait()
                if not self._queue and self._closed:
                    return
                batch = self._queue[:self.max_batch]
                del self._queue[:self.max_batch]
            try:
                completions = self.scheduler.serve_batch(batch)
            except BaseException as exc:   # noqa: BLE001 - fanned out below
                with self._work:
                    for req in batch:
                        future = self._futures.pop(req.rid, None)
                        if future is not None:
                            future.set_exception(exc)
                continue
            with self._work:
                for comp in completions:
                    future = self._futures.pop(comp.rid, None)
                    if future is not None:
                        future.set_result(comp)

    def _fail_pending_locked(self, exc: BaseException) -> None:
        """Fail every queued request's future (caller holds the lock)."""
        self._queue.clear()
        pending, self._futures = self._futures, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------ lifecycle

    def close(self, drain: bool = True) -> None:
        """Stop the serving thread (after draining the queue by default).

        Never hangs: the join is bounded by ``join_timeout_s``, and if
        the serve loop died (or wedged) any still-pending futures are
        failed with the worker's exception instead of waiting forever.
        """
        with self._work:
            if self._closed:
                return
            if not drain:
                dropped, self._queue = self._queue, []
                for req in dropped:
                    future = self._futures.pop(req.rid, None)
                    if future is not None:
                        future.set_exception(
                            RuntimeError("server closed before serving")
                        )
            self._closed = True
            self._work.notify_all()
        self._thread.join(timeout=self.join_timeout_s)
        with self._work:
            if self._futures or self._queue:
                exc = self._worker_error
                if exc is None:
                    exc = RuntimeError(
                        "server closed with the serve loop "
                        f"unresponsive after {self.join_timeout_s:g}s"
                    )
                self._fail_pending_locked(exc)

    def stats(self) -> Dict[str, Any]:
        return self.scheduler.stats()

    def __enter__(self) -> "KVServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
