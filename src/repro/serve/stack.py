"""Assemble the served-KV stack: ORAM + DRAM timing + telemetry.

Mirrors :class:`~repro.sim.engine.Simulation`'s stack construction (the
metadata-aware tree layout, the event-based DRAM model behind a
:class:`~repro.sim.engine.DramSink`) but puts an
:class:`~repro.app.kvstore.ObliviousKV` on top instead of a trace
replayer, optionally wrapping the sink in PR 5's
:class:`~repro.telemetry.spans.TracingSink` (per-operation DRAM-ns
spans) and attaching the section VI-C
:class:`~repro.core.security.GuessingAttacker` so every serve run can
report that batching left per-access indistinguishability intact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.app.kvstore import ObliviousKV
from repro.core import schemes as schemes_mod
from repro.core.ab_oram import build_oram, needs_extensions
from repro.core.security import GuessingAttacker
from repro.mem.address_map import AddressMapping
from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.mem.timing import DDR3_1600
from repro.oram import metadata as md
from repro.oram.recovery import RobustnessConfig
from repro.sim.engine import DramSink


@dataclass
class ServedStack:
    """Everything one serving cell owns."""

    kv: ObliviousKV
    #: DramSink, or a PipelinedDramSink when built with depth > 1
    #: (both expose ``now`` and the per-op attribution counters).
    dram_sink: Any
    telemetry: Optional[Any] = None
    attacker: Optional[GuessingAttacker] = None
    #: Sealed data path + fault wrapper, present only on chaos stacks
    #: (``build_stack`` with a robustness policy / fault plan).
    datastore: Optional[Any] = None
    faulty: Optional[Any] = None

    @property
    def now_ns(self) -> float:
        return self.dram_sink.now

    def arm_faults(self) -> None:
        """Start injecting the fault plan (call after population)."""
        if self.faulty is not None:
            self.faulty.armed = True


def build_stack(
    scheme: str = "ab",
    levels: int = 10,
    seed: int = 0,
    pad_chunks: int = 1,
    telemetry: Optional[Any] = None,
    observer: bool = True,
    robustness: Optional[RobustnessConfig] = None,
    fault_plan: Optional[Any] = None,
    pipeline_depth: int = 1,
    dram_window: int = 32,
    num_shards: int = 1,
) -> Any:
    """Build a timed, observable KV store over a fresh ORAM.

    The default payload path is the plaintext ``store_data`` dict:
    serving benchmarks measure scheduling and simulated memory time,
    and the sealed data path's crypto cost is host CPU the perf/faults
    harnesses already cover.

    Passing ``robustness`` (or a ``fault_plan``, which implies
    ``RobustnessConfig(integrity=True)``) builds the *chaos* variant
    instead, mirroring :class:`~repro.sim.engine.Simulation`: payloads
    route through an :class:`~repro.oram.datastore.EncryptedTreeStore`
    (ChaCha20 + MAC + Merkle) optionally wrapped in a
    :class:`~repro.faults.memory.FaultyMemory` injecting the plan's
    faults. The wrapper starts disarmed so the store can be populated
    cleanly; call :meth:`ServedStack.arm_faults` before the measured
    run. Sealed stacks cannot ``preload`` -- populate with real puts.

    ``pipeline_depth > 1`` serves on the transaction-pipelined
    controller (:mod:`repro.core.pipeline`): path reads of request k+1
    overlap the reshuffle drain of request k on a windowed DRAM model.
    Timing only -- responses are identical at every depth.

    ``num_shards > 1`` returns a
    :class:`~repro.core.sharding.fleet.ShardedStack` instead: a fleet
    of ``num_shards`` independent stacks (each an L-``levels`` subtree
    seeded per shard) behind a keyed-PRF partition map. All other
    keyword arguments apply per shard; ``telemetry`` is rejected
    (per-operation tracing assumes one clock, a fleet has N).
    """
    if pipeline_depth < 1:
        raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > 1:
        # Lazy import: fleet.py imports build_stack from this module.
        from repro.core.sharding.fleet import build_sharded_stack
        return build_sharded_stack(
            scheme=scheme, levels=levels, num_shards=num_shards, seed=seed,
            pad_chunks=pad_chunks, telemetry=telemetry, observer=observer,
            robustness=robustness, fault_plan=fault_plan,
            pipeline_depth=pipeline_depth, dram_window=dram_window,
        )
    cfg = schemes_mod.by_name(scheme, levels)
    fields = (
        md.ab_metadata_fields(cfg) if needs_extensions(cfg)
        else md.ring_metadata_fields(cfg)
    )
    layout = TreeLayout(cfg, metadata_blocks=md.metadata_blocks(cfg, fields))
    if pipeline_depth > 1:
        from repro.core.pipeline import PipelinedDramSink
        dram = DramModel(DDR3_1600, AddressMapping(),
                         window=dram_window if dram_window > 0 else None)
        # The pipelined sink stamps its own overlapped op spans; a
        # TracingSink wrapper would re-stamp them off a serial clock
        # (mirrors Simulation's stack construction).
        dram_sink = PipelinedDramSink(
            layout, dram, depth=pipeline_depth, telemetry=telemetry
        )
        sink: Any = dram_sink
    else:
        dram_sink = DramSink(layout, DramModel(DDR3_1600, AddressMapping()))
        sink = (dram_sink if telemetry is None
                else telemetry.tracing_sink(dram_sink))
    attacker = GuessingAttacker(cfg.levels, seed=seed + 1) if observer else None
    if robustness is None and fault_plan is not None:
        robustness = RobustnessConfig(integrity=True)
    datastore = None
    faulty = None
    if robustness is not None:
        from repro.faults.memory import FaultyMemory
        from repro.oram.datastore import EncryptedTreeStore
        master_key = hashlib.sha256(
            b"repro/serve|" + str(seed).encode()
        ).digest()
        datastore = EncryptedTreeStore(
            cfg, master_key, seed=seed, with_integrity=robustness.integrity,
        )
        if fault_plan is not None:
            faulty = FaultyMemory(datastore, fault_plan, armed=False)
    oram = build_oram(
        cfg, sink=sink, seed=seed,
        observers=[attacker] if attacker is not None else [],
        store_data=datastore is None,
        datastore=faulty if faulty is not None else datastore,
        robustness=robustness,
    )
    oram.warm_fill()
    kv = ObliviousKV(oram, pad_chunks=pad_chunks)
    return ServedStack(
        kv=kv, dram_sink=dram_sink, telemetry=telemetry, attacker=attacker,
        datastore=datastore, faulty=faulty,
    )


def preload_keys(
    kv: ObliviousKV, items: Sequence[Tuple[bytes, bytes]]
) -> int:
    """Bulk-load the initial key set without oblivious accesses.

    Serving benchmarks start from a populated store; issuing one full
    ORAM access per preloaded chunk would dwarf the measured workload
    (and for million-key stores, take hours). Returns the block count
    consumed.
    """
    return kv.preload(items)


def capacity_keys(kv: ObliviousKV, value_bytes: int) -> int:
    """How many keys of ~``value_bytes`` values the store can hold."""
    chunks = max(1, -(-value_bytes // kv.chunk_payload))
    return kv.free_blocks // chunks


def attacker_block(attacker: Optional[GuessingAttacker]) -> Optional[dict]:
    """The report's ``security`` block (None when no observer ran)."""
    if attacker is None or attacker.guesses == 0:
        return None
    return {
        "guesses": int(attacker.guesses),
        "success_rate": attacker.success_rate,
        "expected_rate": attacker.expected_rate,
        "advantage": attacker.advantage(),
    }


__all__: List[str] = [
    "ServedStack",
    "attacker_block",
    "build_stack",
    "capacity_keys",
    "preload_keys",
]
