"""Open-loop replay: drive a generated workload on the DRAM-ns clock.

The replay is a discrete-event serving loop over the simulated clock
(:attr:`DramSink.now`): requests *arrive* at their generated
timestamps whether or not the server is ready (open loop), the
scheduler admits everything that has arrived (up to ``max_batch``)
whenever it goes idle, and service advances the clock through the
event-based DRAM model. Queueing therefore emerges exactly as it
would in a real single-controller deployment: bursts outrun the
controller, queues deepen, batches fatten, and the scheduler's dedup
gets more to work with.

Everything the loop records is deterministic in (workload seed, stack
seed) -- the latency percentiles in ``BENCH_serve.json`` are exact,
not sampled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.serve.request import Completion, Request
from repro.serve.scheduler import BatchScheduler
from repro.serve.stack import ServedStack


@dataclass
class ReplayResult:
    """One replayed workload: completions plus clock bookkeeping."""

    completions: List[Completion]
    #: Simulated serving window (first admission to last completion).
    start_ns: float
    end_ns: float
    #: Host wall time of the serving loop (host-dependent).
    wall_s: float

    @property
    def sim_ns(self) -> float:
        return self.end_ns - self.start_ns


def replay(
    stack: ServedStack,
    requests: Sequence[Request],
    scheduler: BatchScheduler,
    max_batch: int = 32,
) -> ReplayResult:
    """Serve ``requests`` (arrival-ordered) through ``scheduler``.

    ``max_batch`` caps admission per scheduling round; the ``fifo``
    policy still admits batches (admission is just queue drainage) but
    serves them strictly one request at a time, so its latencies are
    identical to single-request admission.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    sink = stack.dram_sink
    completions: List[Completion] = []
    i, n = 0, len(requests)
    wall0 = time.perf_counter()
    start_ns = sink.now
    while i < n:
        now = sink.now
        next_arrival = requests[i].arrival_ns
        if next_arrival > now:
            # Idle until the next arrival: open loop never back-fills.
            sink.advance(next_arrival - now)
            now = next_arrival
        batch = [requests[i]]
        i += 1
        while (
            i < n
            and len(batch) < max_batch
            and requests[i].arrival_ns <= now
        ):
            batch.append(requests[i])
            i += 1
        completions.extend(scheduler.serve_batch(batch))
    return ReplayResult(
        completions=completions,
        start_ns=start_ns,
        end_ns=sink.now,
        wall_s=time.perf_counter() - wall0,
    )
