"""``repro.serve``: a request front-end over the oblivious KV store.

The serving layer turns the single-caller
:class:`~repro.app.kvstore.ObliviousKV` into a *system*:

- :mod:`repro.serve.request` -- the request/completion records every
  layer exchanges;
- :mod:`repro.serve.scheduler` -- the batching scheduler: admits one
  oblivious access at a time but batches and reorders queued clients,
  deduping same-block hits (the block is stash-resident after the
  first access) and coalescing superseded writes;
- :mod:`repro.serve.loadgen` -- the open-loop load generator:
  seed-pinned Poisson and bursty arrivals, zipf key popularity over
  key universes up to millions of keys;
- :mod:`repro.serve.replay` -- drives a generated workload through the
  scheduler on the simulated DRAM-ns clock (open loop: arrivals never
  wait for service, so queueing is measured honestly);
- :mod:`repro.serve.server` -- a thread-pool front-end for wall-clock
  serving: clients submit concurrently, one scheduler thread services
  batches;
- :mod:`repro.serve.bench` / :mod:`~repro.serve.schema` /
  :mod:`~repro.serve.compare` / :mod:`~repro.serve.report` -- the
  ``BENCH_serve.json`` harness (the tail-latency yardstick CI gates);
- :mod:`repro.serve.tracing` -- per-request Perfetto traces splitting
  queueing vs. ORAM vs. DRAM time;
- :mod:`repro.serve.resilience` -- the chaos-hardened serving loop:
  per-request deadlines, bounded admission with load shedding, and
  degraded-mode serving (stash-resident reads + a write journal) while
  quarantined buckets rebuild;
- :mod:`repro.serve.chaos` -- the ``BENCH_chaos.json`` campaign: fault
  injection under live load, gated on availability and detection;
- :mod:`repro.serve.scaling` -- the ``BENCH_scaling.json`` capacity
  curve: one workload served by 1..16 AB-ORAM shards
  (:mod:`repro.core.sharding`), gated on fleet speedup, drill
  availability, and control-plane health.
"""

from repro.serve.chaos import ChaosCell, ChaosConfig, run_chaos
from repro.serve.scaling import (
    ScalingCell, ScalingConfig, run_scaling, scaling_check,
)
from repro.serve.loadgen import WorkloadConfig, generate_requests, key_name, value_for
from repro.serve.request import DELETE, GET, PUT, Completion, Request
from repro.serve.resilience import (
    ChaosReplayResult, ResilienceConfig, resilient_replay,
)
from repro.serve.scheduler import BatchScheduler
from repro.serve.server import KVServer
from repro.serve.stack import ServedStack, build_stack, preload_keys

__all__ = [
    "BatchScheduler",
    "ChaosCell",
    "ChaosConfig",
    "ChaosReplayResult",
    "Completion",
    "DELETE",
    "GET",
    "KVServer",
    "PUT",
    "Request",
    "ResilienceConfig",
    "ScalingCell",
    "ScalingConfig",
    "ServedStack",
    "WorkloadConfig",
    "build_stack",
    "run_scaling",
    "scaling_check",
    "generate_requests",
    "key_name",
    "preload_keys",
    "resilient_replay",
    "run_chaos",
    "value_for",
]
