"""Run the serving matrix and build the ``BENCH_serve.json`` report.

Every cell is one (workload, policy) pair served end-to-end on a fresh
stack: build the ORAM + DRAM model, preload the stored keys, generate
the workload, replay it open-loop on the simulated clock. The ``sim``
block of a cell is a pure function of the config, so the report's
deterministic fields are byte-identical across runs, machines and
worker counts; only wall-clock fields vary.

The matrix always pairs the ``batch`` scheduler against the naive
``fifo`` baseline over identical workloads -- the report is the
evidence that dedup/coalescing buys real access savings
(``accesses_per_request``) and tail-latency wins, which
:func:`dedup_check` turns into a CI gate.
"""

from __future__ import annotations

import platform
import sys
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.executor import Cell, report_progress, run_cells
from repro.serve.loadgen import WorkloadConfig, generate_requests, initial_items
from repro.serve.replay import replay
from repro.serve.scheduler import POLICIES, BatchScheduler
from repro.serve.schema import REPORT_KIND, SCHEMA_VERSION
from repro.serve.stack import attacker_block, build_stack
from repro.serve.tracing import request_trace_doc, write_trace


@dataclass
class ServeConfig:
    """One serve-harness invocation (the report's ``config`` block)."""

    scheme: str = "ab"
    levels: int = 10
    seed: int = 0
    max_batch: int = 32
    policies: Sequence[str] = POLICIES
    workloads: Sequence[WorkloadConfig] = ()
    smoke: bool = False
    workers: int = 1
    progress: Any = None   # callable(str) for live cell updates
    #: Write a per-request Perfetto trace of this (workload, policy)
    #: cell to ``trace_out`` (host-independent content).
    trace_out: Optional[str] = None
    trace_cell: Optional[Tuple[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "levels": self.levels,
            "seed": self.seed,
            "max_batch": self.max_batch,
            "policies": list(self.policies),
            "workloads": [w.to_dict() for w in self.workloads],
            "smoke": self.smoke,
        }


#: The smoke workloads: a moderately-loaded Poisson cell (queues stay
#: shallow, dedup is occasional) and an overloaded bursty cell (flash
#: crowds drive deep queues and fat batches -- the dedup showcase).
#: Rates are set against the L10 ab cell's ~360 simulated ns/access.
_SMOKE_WORKLOADS = (
    WorkloadConfig(
        name="zipf-poisson",
        n_requests=900,
        n_keys=100_000,
        stored_keys=700,
        arrival="poisson",
        rate_rps=1_000_000.0,
        zipf_s=0.99,
        read_fraction=0.85,
        value_bytes=80,
        expect_dedup=False,
    ),
    WorkloadConfig(
        name="zipf-bursty",
        n_requests=900,
        n_keys=100_000,
        stored_keys=700,
        arrival="bursty",
        rate_rps=900_000.0,
        burst_factor=6.0,
        zipf_s=1.1,
        read_fraction=0.9,
        value_bytes=80,
        expect_dedup=True,
    ),
)

#: The full matrix folds a million-key universe onto a deeper tree and
#: runs long enough for stable p999 estimates.
_FULL_WORKLOADS = (
    WorkloadConfig(
        name="zipf-poisson",
        n_requests=8000,
        n_keys=2_000_000,
        stored_keys=3000,
        arrival="poisson",
        rate_rps=800_000.0,
        zipf_s=0.99,
        read_fraction=0.85,
        value_bytes=80,
        expect_dedup=False,
    ),
    WorkloadConfig(
        name="zipf-bursty",
        n_requests=8000,
        n_keys=2_000_000,
        stored_keys=3000,
        arrival="bursty",
        rate_rps=700_000.0,
        burst_factor=6.0,
        zipf_s=1.1,
        read_fraction=0.9,
        value_bytes=80,
        expect_dedup=True,
    ),
    WorkloadConfig(
        name="zipf-mixed",
        n_requests=8000,
        n_keys=2_000_000,
        stored_keys=3000,
        arrival="bursty",
        rate_rps=700_000.0,
        burst_factor=4.0,
        zipf_s=1.2,
        read_fraction=0.8,
        delete_fraction=0.02,
        value_bytes=110,
        expect_dedup=True,
    ),
)


def smoke_config(**overrides: Any) -> ServeConfig:
    """Seconds-scale matrix for CI."""
    base = ServeConfig(workloads=_SMOKE_WORKLOADS, smoke=True)
    return replace(base, **overrides)


def full_config(**overrides: Any) -> ServeConfig:
    """The nightly matrix: deeper tree, million-key universe."""
    base = ServeConfig(levels=12, workloads=_FULL_WORKLOADS, smoke=False)
    return replace(base, **overrides)


# ----------------------------------------------------------------- helpers

def _environment() -> Dict[str, str]:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "implementation": sys.implementation.name,
    }


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    if not len(values):
        return {"p50": 0.0, "p99": 0.0, "p999": 0.0, "mean": 0.0, "max": 0.0}
    arr = np.asarray(values, dtype=np.float64)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "p999": float(np.percentile(arr, 99.9)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


def _serve_cell_task(
    payload: Tuple[ServeConfig, WorkloadConfig, str]
) -> Dict[str, Any]:
    """One matrix cell, runnable in-process or in a spawn worker."""
    cfg, workload, policy = payload
    report_progress(f"serving {workload.name}/{policy} ...")
    want_trace = (
        cfg.trace_out is not None
        and cfg.trace_cell == (workload.name, policy)
    )
    telemetry = None
    if want_trace:
        from repro.telemetry import Telemetry
        telemetry = Telemetry(meta={
            "workload": workload.name, "policy": policy,
            "scheme": cfg.scheme, "levels": cfg.levels, "seed": cfg.seed,
        })
    stack = build_stack(
        scheme=cfg.scheme, levels=cfg.levels, seed=cfg.seed,
        telemetry=telemetry, observer=True,
    )
    stack.kv.preload(initial_items(workload))
    requests = generate_requests(workload)
    scheduler = BatchScheduler(
        stack.kv, policy=policy, seed=cfg.seed,
        clock=lambda: stack.dram_sink.now,
    )
    result = replay(stack, requests, scheduler, max_batch=cfg.max_batch)
    comps = result.completions
    stats = scheduler.stats()
    sim_s = result.sim_ns / 1e9
    sim: Dict[str, Any] = {
        "requests": stats["requests"],
        "accesses_issued": stats["accesses_issued"],
        "dedup_hits": stats["dedup_hits"],
        "coalesced_puts": stats["coalesced_puts"],
        "absent_gets": stats["absent_gets"],
        "accesses_per_request": (
            stats["accesses_issued"] / stats["requests"]
            if stats["requests"] else 0.0
        ),
        "ops": stats["ops"],
        "batch_size_hist": stats["batch_size_hist"],
        "sim_ns": result.sim_ns,
        "requests_per_s_sim": len(comps) / sim_s if sim_s > 0 else 0.0,
        "latency_ns": _percentiles([c.latency_ns for c in comps]),
        "queue_ns": _percentiles([c.queue_ns for c in comps]),
        "service_ns": _percentiles([c.service_ns for c in comps]),
    }
    security = attacker_block(stack.attacker)
    if security is not None:
        sim["security"] = security
    if want_trace:
        doc = request_trace_doc(
            comps, telemetry.spans, meta=telemetry.meta,
        )
        write_trace(doc, cfg.trace_out)
    wall_lat_us = _percentiles([c.wall_s * 1e6 for c in comps])
    wall_lat_us.pop("mean", None)
    wall_lat_us.pop("max", None)
    return {
        "workload": workload.name,
        "policy": policy,
        "wall_s": result.wall_s,
        "requests_per_s_wall": (
            len(comps) / result.wall_s if result.wall_s > 0 else 0.0
        ),
        "wall_latency_us": wall_lat_us,
        "sim": sim,
    }


# ------------------------------------------------------------------ runner

def run_serve(cfg: Optional[ServeConfig] = None) -> Dict[str, Any]:
    """Run the (workload x policy) matrix and return the report doc.

    ``cfg.workers > 1`` fans the independent cells over a spawn pool;
    the ``sim`` blocks are byte-identical to a serial run. A cell whose
    worker raises becomes an ``{"workload", "policy", "error"}`` entry.
    """
    cfg = cfg or full_config()
    if not cfg.workloads:
        raise ValueError("config has no workloads")
    if cfg.trace_out is not None and cfg.trace_cell is None:
        # Default to the most interesting cell: the first workload that
        # expects dedup (deep queues), under the batch policy.
        interesting = next(
            (w for w in cfg.workloads if w.expect_dedup), cfg.workloads[0]
        )
        policy = "batch" if "batch" in cfg.policies else cfg.policies[0]
        cfg = replace(cfg, trace_cell=(interesting.name, policy))
    worker_cfg = replace(cfg, progress=None, workers=1)
    pairs = [(w, p) for w in cfg.workloads for p in cfg.policies]
    outputs = run_cells(
        _serve_cell_task,
        [Cell(f"{w.name}/{p}", (worker_cfg, w, p)) for w, p in pairs],
        workers=cfg.workers,
        progress=cfg.progress,
    )
    cells: List[Dict[str, Any]] = []
    for (workload, policy), res in zip(pairs, outputs):
        if res.ok:
            cells.append(res.value)
        else:
            cells.append({
                "workload": workload.name,
                "policy": policy,
                "error": res.error,
            })
    return {
        "kind": REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "config": cfg.to_dict(),
        "environment": _environment(),
        "cells": cells,
    }


# ------------------------------------------------------------- dedup gate

def dedup_check(doc: Dict[str, Any]) -> List[str]:
    """CI gate: the batch policy must beat naive FIFO where expected.

    For every workload present under both policies: batch must never
    issue *more* accesses than FIFO, and on workloads flagged
    ``expect_dedup`` it must issue strictly fewer with at least one
    dedup hit. Returns findings (empty = pass).
    """
    problems: List[str] = []
    expect = {
        w["name"]: w.get("expect_dedup", False)
        for w in doc.get("config", {}).get("workloads", [])
    }
    by_key = {
        (c.get("workload"), c.get("policy")): c
        for c in doc.get("cells", [])
    }
    for name in expect:
        fifo = by_key.get((name, "fifo"))
        batch = by_key.get((name, "batch"))
        if fifo is None or batch is None:
            continue
        if "error" in fifo or "error" in batch:
            problems.append(f"{name}: cell errored, dedup win unverified")
            continue
        fa = fifo["sim"]["accesses_issued"]
        ba = batch["sim"]["accesses_issued"]
        if ba > fa:
            problems.append(
                f"{name}: batch issued more accesses than fifo ({ba} > {fa})"
            )
        if expect[name]:
            if ba >= fa:
                problems.append(
                    f"{name}: expected strict dedup win, got "
                    f"batch={ba} fifo={fa}"
                )
            if batch["sim"]["dedup_hits"] < 1:
                problems.append(f"{name}: batch policy recorded no dedup hits")
    return problems


__all__ = [
    "ServeConfig",
    "dedup_check",
    "full_config",
    "run_serve",
    "smoke_config",
]
