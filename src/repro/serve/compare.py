"""Diff two serve reports: the latency/throughput regression gate.

``compare_reports`` matches cells by (workload, policy) and checks the
new report against the baseline on the *simulated* metrics -- they are
deterministic for a code version, so any delta is a real behavioural
change, not runner noise:

- simulated throughput (``requests_per_s_sim``) dropping by more than
  ``threshold`` percent is a regression;
- simulated p99 latency (``latency_ns.p99``) rising by more than
  ``threshold`` percent is a regression;
- other deterministic drift (dedup hits, access counts, batch shapes)
  is reported but never gates -- scheduler changes legitimately move
  them and must be reviewed, not blocked.

Exit codes mirror :mod:`repro.perf.compare`: 0 ok, 1 regression,
2 schema/load/missing-cell error. CI runs the smoke compare with
``--warn-only`` so a reviewed improvement can land alongside its
baseline refresh.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.serve.schema import (
    CHAOS_REPORT_KIND, SCALING_REPORT_KIND, cell_key, chaos_cell_key,
    scaling_cell_key, validate_chaos_report, validate_report,
    validate_scaling_report,
)

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2

DEFAULT_THRESHOLD_PCT = 10.0

#: Deterministic scalars diffed for the drift note (never gating).
_DRIFT_FIELDS = (
    "accesses_issued", "dedup_hits", "coalesced_puts",
    "absent_gets", "requests",
)


#: Availability may drop at most this many percentage points before
#: the chaos compare gates (absolute, since availability lives on
#: [0, 1] where relative thresholds are meaningless near 1.0).
DEFAULT_AVAILABILITY_DROP_PP = 1.0

#: Chaos deterministic scalars diffed for the drift note (never gating).
_CHAOS_DRIFT_FIELDS = (
    "accesses_issued", "degraded_reads", "retries", "scheduler_timeouts",
)


def load_report(path: str) -> Tuple[Any, List[str]]:
    """Parse and validate one report file; returns (doc, errors).

    Validates against the schema the document's ``kind`` claims, so
    one loader serves both serve and chaos reports.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return None, [f"{path}: cannot load report: {exc}"]
    if isinstance(doc, dict) and doc.get("kind") == CHAOS_REPORT_KIND:
        problems = validate_chaos_report(doc)
    elif isinstance(doc, dict) and doc.get("kind") == SCALING_REPORT_KIND:
        problems = validate_scaling_report(doc)
    else:
        problems = validate_report(doc)
    return doc, [f"{path}: {e}" for e in problems]


def compare_reports(
    baseline: Dict[str, Any],
    new: Dict[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> Tuple[int, List[str]]:
    """Compare two validated reports; returns (exit_code, messages)."""
    messages: List[str] = []
    base_cells = {cell_key(c): c for c in baseline["cells"]}
    new_cells = {cell_key(c): c for c in new["cells"]}
    exit_code = EXIT_OK

    def regress(msg: str) -> None:
        nonlocal exit_code
        messages.append(msg)
        if exit_code == EXIT_OK:
            exit_code = EXIT_REGRESSION

    for key, base in base_cells.items():
        if key not in new_cells:
            messages.append(f"ERROR {key}: cell missing from new report")
            exit_code = EXIT_ERROR
            continue
        cur = new_cells[key]
        if "error" in base:
            messages.append(f"ERROR {key}: baseline cell is an error entry")
            exit_code = EXIT_ERROR
            continue
        if "error" in cur:
            first = str(cur["error"]).strip().splitlines()
            messages.append(
                f"ERROR {key}: cell errored in new report: "
                f"{first[0] if first else 'cell failed'}"
            )
            exit_code = EXIT_ERROR
            continue
        base_sim, cur_sim = base["sim"], cur["sim"]
        old_tp = float(base_sim["requests_per_s_sim"])
        new_tp = float(cur_sim["requests_per_s_sim"])
        old_p99 = float(base_sim["latency_ns"]["p99"])
        new_p99 = float(cur_sim["latency_ns"]["p99"])
        if old_tp <= 0 or old_p99 <= 0:
            messages.append(
                f"ERROR {key}: degenerate baseline "
                f"(tp={old_tp}, p99={old_p99})"
            )
            exit_code = EXIT_ERROR
            continue
        tp_pct = (new_tp - old_tp) / old_tp * 100.0
        p99_pct = (new_p99 - old_p99) / old_p99 * 100.0
        drifted = _sim_drift(base_sim, cur_sim)
        note = f" (drift: {', '.join(drifted)})" if drifted else ""
        line = (
            f"{key}: {old_tp:.0f} -> {new_tp:.0f} req/s sim "
            f"({tp_pct:+.1f}%), p99 {old_p99:.0f} -> {new_p99:.0f} ns "
            f"({p99_pct:+.1f}%){note}"
        )
        if tp_pct < -threshold_pct:
            regress(
                f"REGRESSION {line} -- throughput drop exceeds "
                f"-{threshold_pct:g}%"
            )
        elif p99_pct > threshold_pct:
            regress(
                f"REGRESSION {line} -- p99 latency rise exceeds "
                f"+{threshold_pct:g}%"
            )
        else:
            messages.append(f"OK {line}")
    for key in new_cells:
        if key not in base_cells:
            messages.append(f"NEW {key}: no baseline entry (matrix grew)")
    return exit_code, messages


def _sim_drift(base_sim: Dict[str, Any], new_sim: Dict[str, Any]) -> List[str]:
    """Names of deterministic scalars that changed between reports."""
    return [
        k for k in _DRIFT_FIELDS
        if base_sim.get(k) != new_sim.get(k)
    ]


def compare_chaos_reports(
    baseline: Dict[str, Any],
    new: Dict[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    availability_drop_pp: float = DEFAULT_AVAILABILITY_DROP_PP,
) -> Tuple[int, List[str]]:
    """The chaos regression gate: clients must not fare worse.

    Matched by cell name; gates on the deterministic client-facing
    metrics -- availability dropping more than ``availability_drop_pp``
    percentage points, served p99 latency rising more than
    ``threshold_pct`` percent, or tamper detection falling below a
    baseline that had it perfect.
    """
    messages: List[str] = []
    base_cells = {chaos_cell_key(c): c for c in baseline["cells"]}
    new_cells = {chaos_cell_key(c): c for c in new["cells"]}
    exit_code = EXIT_OK

    def regress(msg: str) -> None:
        nonlocal exit_code
        messages.append(msg)
        if exit_code == EXIT_OK:
            exit_code = EXIT_REGRESSION

    for key, base in base_cells.items():
        if key not in new_cells:
            messages.append(f"ERROR {key}: cell missing from new report")
            exit_code = EXIT_ERROR
            continue
        cur = new_cells[key]
        if "error" in base:
            messages.append(f"ERROR {key}: baseline cell is an error entry")
            exit_code = EXIT_ERROR
            continue
        if "error" in cur:
            first = str(cur["error"]).strip().splitlines()
            messages.append(
                f"ERROR {key}: cell errored in new report: "
                f"{first[0] if first else 'cell failed'}"
            )
            exit_code = EXIT_ERROR
            continue
        base_sim, cur_sim = base["sim"], cur["sim"]
        old_av = float(base_sim["availability"])
        new_av = float(cur_sim["availability"])
        old_p99 = float(base_sim["latency_ns"]["p99"])
        new_p99 = float(cur_sim["latency_ns"]["p99"])
        av_pp = (new_av - old_av) * 100.0
        drifted = [
            k for k in _CHAOS_DRIFT_FIELDS
            if base_sim.get(k) != cur_sim.get(k)
        ]
        note = f" (drift: {', '.join(drifted)})" if drifted else ""
        line = (
            f"{key}: availability {old_av:.4f} -> {new_av:.4f} "
            f"({av_pp:+.2f}pp), served p99 {old_p99:.0f} -> "
            f"{new_p99:.0f} ns{note}"
        )
        if av_pp < -availability_drop_pp:
            regress(
                f"REGRESSION {line} -- availability drop exceeds "
                f"-{availability_drop_pp:g}pp"
            )
            continue
        if old_p99 > 0:
            p99_pct = (new_p99 - old_p99) / old_p99 * 100.0
            if p99_pct > threshold_pct:
                regress(
                    f"REGRESSION {line} -- p99-under-fault rise exceeds "
                    f"+{threshold_pct:g}%"
                )
                continue
        old_det = base_sim.get("detection")
        new_det = cur_sim.get("detection")
        if (
            old_det is not None and new_det is not None
            and float(old_det["rate"]) >= 1.0
            and float(new_det["rate"]) < 1.0
        ):
            regress(
                f"REGRESSION {key}: tamper detection fell from 100% to "
                f"{float(new_det['rate']) * 100.0:.1f}%"
            )
            continue
        messages.append(f"OK {line}")
    for key in new_cells:
        if key not in base_cells:
            messages.append(f"NEW {key}: no baseline entry (campaign grew)")
    return exit_code, messages


#: Scaling deterministic scalars diffed for the drift note (never gating).
_SCALING_DRIFT_FIELDS = ("requests", "completions",)


def compare_scaling_reports(
    baseline: Dict[str, Any],
    new: Dict[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    availability_drop_pp: float = DEFAULT_AVAILABILITY_DROP_PP,
) -> Tuple[int, List[str]]:
    """The capacity-curve regression gate.

    Matched by ``name@sN``; gates on the fleet-level deterministic
    metrics -- aggregate ns-per-request rising more than
    ``threshold_pct`` percent, availability dropping more than
    ``availability_drop_pp`` points, a fleet that was all-healthy no
    longer ending so, or the analytic per-shard memory growing (a
    capacity regression is as real as a throughput one).
    """
    messages: List[str] = []
    base_cells = {scaling_cell_key(c): c for c in baseline["cells"]}
    new_cells = {scaling_cell_key(c): c for c in new["cells"]}
    exit_code = EXIT_OK

    def regress(msg: str) -> None:
        nonlocal exit_code
        messages.append(msg)
        if exit_code == EXIT_OK:
            exit_code = EXIT_REGRESSION

    for key, base in base_cells.items():
        if key not in new_cells:
            messages.append(f"ERROR {key}: cell missing from new report")
            exit_code = EXIT_ERROR
            continue
        cur = new_cells[key]
        if "error" in base:
            messages.append(f"ERROR {key}: baseline cell is an error entry")
            exit_code = EXIT_ERROR
            continue
        if "error" in cur:
            first = str(cur["error"]).strip().splitlines()
            messages.append(
                f"ERROR {key}: cell errored in new report: "
                f"{first[0] if first else 'cell failed'}"
            )
            exit_code = EXIT_ERROR
            continue
        base_fleet = base["sim"]["fleet"]
        cur_fleet = cur["sim"]["fleet"]
        old_ns = float(base_fleet["ns_per_request"])
        new_ns = float(cur_fleet["ns_per_request"])
        old_av = float(base_fleet["availability"])
        new_av = float(cur_fleet["availability"])
        av_pp = (new_av - old_av) * 100.0
        drifted = [
            k for k in _SCALING_DRIFT_FIELDS
            if base_fleet.get(k) != cur_fleet.get(k)
        ]
        old_mem = base.get("memory", {}).get("per_shard_bytes", 0)
        new_mem = cur.get("memory", {}).get("per_shard_bytes", 0)
        if old_mem != new_mem:
            drifted.append("per_shard_bytes")
        note = f" (drift: {', '.join(drifted)})" if drifted else ""
        line = (
            f"{key}: {old_ns:.1f} -> {new_ns:.1f} ns/req aggregate "
            f"({(new_ns - old_ns) / old_ns * 100.0 if old_ns > 0 else 0.0:+.1f}%), "
            f"availability {old_av:.4f} -> {new_av:.4f} ({av_pp:+.2f}pp){note}"
        )
        if old_ns <= 0:
            messages.append(f"ERROR {key}: degenerate baseline (ns/req {old_ns})")
            exit_code = EXIT_ERROR
            continue
        if (new_ns - old_ns) / old_ns * 100.0 > threshold_pct:
            regress(
                f"REGRESSION {line} -- aggregate ns/req rise exceeds "
                f"+{threshold_pct:g}%"
            )
            continue
        if av_pp < -availability_drop_pp:
            regress(
                f"REGRESSION {line} -- availability drop exceeds "
                f"-{availability_drop_pp:g}pp"
            )
            continue
        if (
            base["sim"]["control"].get("all_healthy", False)
            and not cur["sim"]["control"].get("all_healthy", False)
        ):
            regress(f"REGRESSION {key}: fleet no longer ends all-healthy")
            continue
        if new_mem > old_mem:
            regress(
                f"REGRESSION {key}: per-shard memory grew "
                f"{old_mem} -> {new_mem} bytes"
            )
            continue
        messages.append(f"OK {line}")
    for key in new_cells:
        if key not in base_cells:
            messages.append(f"NEW {key}: no baseline entry (curve grew)")
    return exit_code, messages


def compare_files(
    baseline_path: str,
    new_path: str,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> Tuple[int, List[str]]:
    """File-level entry: load, validate, compare.

    Dispatches on the reports' ``kind``: serve reports take the
    throughput/latency gate, chaos reports the availability/detection
    gate. Mixing kinds is an error.
    """
    base, base_errs = load_report(baseline_path)
    new, new_errs = load_report(new_path)
    errors = base_errs + new_errs
    if errors:
        return EXIT_ERROR, [f"ERROR {e}" for e in errors]
    base_kind = base.get("kind")
    if base_kind != new.get("kind"):
        return EXIT_ERROR, [
            f"ERROR cannot compare {base_kind!r} against "
            f"{new.get('kind')!r} reports"
        ]
    if base_kind == CHAOS_REPORT_KIND:
        return compare_chaos_reports(base, new, threshold_pct)
    if base_kind == SCALING_REPORT_KIND:
        return compare_scaling_reports(base, new, threshold_pct)
    return compare_reports(base, new, threshold_pct)
