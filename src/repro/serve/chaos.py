"""The chaos campaign: fault injection under live serving load.

Every cell of ``BENCH_chaos.json`` serves one workload end-to-end on a
*sealed* stack (ChaCha20 + MAC + Merkle) with a
:class:`~repro.faults.memory.FaultyMemory` armed underneath it, through
the resilient serving loop of :mod:`repro.serve.resilience`. Where the
fault campaign of :mod:`repro.faults.campaign` asks "does the memory
detect and recover?", the chaos campaign asks the serving question:
**what did clients experience while it did?** -- availability, tail
latency under fault, shed/timeout counts, time-to-recover.

The cells escalate:

- ``baseline``  -- no faults; the resilient loop must serve exactly
  like the plain one (availability 1.0, nothing shed).
- ``transient`` -- short outages the ORAM-level retry ladder absorbs
  inline; clients see latency, never errors (availability >= 99%).
- ``tamper``    -- bit flips + replays; detection quarantines buckets,
  serving drops to degraded mode (stash-resident reads + write
  journal) and recovers. Detection must be 100%.
- ``outage``    -- long outages past the retry budget plus dropped
  writes, against a small admission queue: the overload story, load
  shedding by policy instead of unbounded queues.

Like ``BENCH_serve.json``, the ``sim`` block of every cell is a pure
function of the config: seeded workload, seeded ORAM, seed-pinned
stateless fault plan, event-based DRAM clock. CI asserts the
deterministic view is byte-identical across runs and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.oram.recovery import RobustnessConfig
from repro.parallel.executor import Cell, report_progress, run_cells
from repro.serve.bench import _environment, _percentiles
from repro.serve.loadgen import (
    WorkloadConfig, generate_requests, initial_items,
)
from repro.serve.request import OK, STATUSES
from repro.serve.resilience import ResilienceConfig, resilient_replay
from repro.serve.scheduler import BatchScheduler
from repro.serve.schema import CHAOS_REPORT_KIND, SCHEMA_VERSION
from repro.serve.stack import attacker_block, build_stack
from repro.serve.tracing import request_trace_doc, write_trace

#: Fault kinds whose detection is synchronous at the injection site --
#: the 100%-detection CI gate quantifies over these. ``dropped_write``
#: detection is lazy (a later read of the bucket) and ``unavailable``
#: is overt (the error *is* the fault), so neither belongs in the gate.
TAMPER_KINDS = ("bit_flip", "replay")


@dataclass(frozen=True)
class ChaosCell:
    """One campaign cell: a workload, a fault plan, a survival policy.

    The ``min_availability`` / ``expect_*`` fields are the cell's CI
    gate, carried inside the report config so :func:`chaos_check` needs
    nothing but the document.
    """

    name: str
    workload: WorkloadConfig
    faults: Optional[FaultPlan]
    resilience: ResilienceConfig
    min_availability: float = 0.0
    expect_faults: bool = False
    expect_episodes: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload.to_dict(),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "resilience": self.resilience.to_dict(),
            "min_availability": self.min_availability,
            "expect_faults": self.expect_faults,
            "expect_episodes": self.expect_episodes,
        }


@dataclass
class ChaosConfig:
    """One chaos-harness invocation (the report's ``config`` block)."""

    scheme: str = "ab"
    levels: int = 8
    seed: int = 0
    max_batch: int = 16
    #: ORAM-level recovery policy every cell's stack runs under. The
    #: retry budget comfortably exceeds the transient cell's longest
    #: outage so short blips recover inline, never via quarantine.
    robustness: RobustnessConfig = field(
        default_factory=lambda: RobustnessConfig(
            integrity=True, retry_budget=6,
        )
    )
    cells: Sequence[ChaosCell] = ()
    smoke: bool = False
    workers: int = 1
    progress: Any = None   # callable(str) for live cell updates
    trace_out: Optional[str] = None
    trace_cell: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "levels": self.levels,
            "seed": self.seed,
            "max_batch": self.max_batch,
            "robustness": self.robustness.to_dict(),
            "cells": [c.to_dict() for c in self.cells],
            "smoke": self.smoke,
        }


# ------------------------------------------------------------------- cells

def _mix(name: str, n_requests: int, stored_keys: int, **kw: Any) -> WorkloadConfig:
    base: Dict[str, Any] = dict(
        name=name,
        n_requests=n_requests,
        n_keys=4_000,
        stored_keys=stored_keys,
        arrival="poisson",
        rate_rps=1_000_000.0,
        zipf_s=0.9,
        read_fraction=0.8,
        delete_fraction=0.02,
        value_bytes=40,
        expect_dedup=False,
    )
    base.update(kw)
    return WorkloadConfig(**base)


def _smoke_cells() -> Tuple[ChaosCell, ...]:
    wl = _mix("chaos-mix", 240, 64)
    return (
        ChaosCell(
            name="baseline",
            workload=wl,
            faults=None,
            resilience=ResilienceConfig(),
            min_availability=1.0,
        ),
        ChaosCell(
            name="transient",
            workload=wl,
            faults=FaultPlan(
                seed=101, rates={"unavailable": 0.02}, max_outage_ops=2,
            ),
            resilience=ResilienceConfig(
                deadline_ns=5_000_000.0, queue_limit=64,
            ),
            min_availability=0.99,
            expect_faults=True,
        ),
        ChaosCell(
            name="tamper",
            workload=wl,
            faults=FaultPlan(
                seed=202, rates={"bit_flip": 0.006, "replay": 0.005},
            ),
            resilience=ResilienceConfig(
                deadline_ns=4_000_000.0, queue_limit=128,
                retry_budget=8, backoff_base_ns=5_000.0,
                backoff_factor=1.6,
                journal_limit=96, repair_ns=30_000.0,
            ),
            min_availability=0.90,
            expect_faults=True,
            expect_episodes=True,
        ),
        ChaosCell(
            name="outage",
            workload=_mix(
                "chaos-burst", 240, 64,
                arrival="bursty", rate_rps=900_000.0, burst_factor=5.0,
            ),
            faults=FaultPlan(
                seed=303,
                rates={"unavailable": 0.015, "dropped_write": 0.01},
                max_outage_ops=10,
            ),
            resilience=ResilienceConfig(
                deadline_ns=600_000.0, queue_limit=12,
                shed_policy="drop-oldest",
                retry_budget=4, backoff_base_ns=8_000.0,
                journal_limit=32, repair_ns=25_000.0,
            ),
            min_availability=0.60,
            expect_faults=True,
        ),
    )


def _full_cells() -> Tuple[ChaosCell, ...]:
    scaled = []
    for cell in _smoke_cells():
        wl = replace(cell.workload, n_requests=1200, stored_keys=160)
        scaled.append(replace(cell, workload=wl))
    return tuple(scaled)


def smoke_config(**overrides: Any) -> ChaosConfig:
    """Seconds-scale campaign for CI."""
    base = ChaosConfig(cells=_smoke_cells(), smoke=True)
    return replace(base, **overrides)


def full_config(**overrides: Any) -> ChaosConfig:
    """The nightly soak: same cells, 5x the load, a deeper tree."""
    base = ChaosConfig(levels=10, cells=_full_cells(), smoke=False)
    return replace(base, **overrides)


# ------------------------------------------------------------------ runner

def _episode_block(episodes: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    spans = [e["exit_ns"] - e["enter_ns"] for e in episodes]
    return {
        "count": len(episodes),
        "recover_ns_mean": sum(spans) / len(spans) if spans else 0.0,
        "recover_ns_max": max(spans) if spans else 0.0,
        "rebuilt": sum(e["rebuilt"] for e in episodes),
        "journal_replayed": sum(e["journal_replayed"] for e in episodes),
    }


def _detection_block(summary: Dict[str, Any]) -> Dict[str, Any]:
    injected = sum(summary["injected"][k] for k in TAMPER_KINDS)
    detected = sum(summary["detected"][k] for k in TAMPER_KINDS)
    return {
        "tamper_injected": injected,
        "tamper_detected": detected,
        "rate": detected / injected if injected else 1.0,
    }


def _chaos_cell_task(payload: Tuple[ChaosConfig, ChaosCell]) -> Dict[str, Any]:
    """One campaign cell, runnable in-process or in a spawn worker."""
    cfg, cell = payload
    report_progress(f"chaos {cell.name} ...")
    want_trace = cfg.trace_out is not None and cfg.trace_cell == cell.name
    telemetry = None
    if want_trace:
        from repro.telemetry import Telemetry
        telemetry = Telemetry(meta={
            "cell": cell.name, "scheme": cfg.scheme,
            "levels": cfg.levels, "seed": cfg.seed,
        })
    stack = build_stack(
        scheme=cfg.scheme, levels=cfg.levels, seed=cfg.seed,
        telemetry=telemetry, observer=True,
        robustness=cfg.robustness, fault_plan=cell.faults,
    )
    kv = stack.kv
    # Sealed stacks cannot bulk-preload: populate through real puts
    # while the fault wrapper is still disarmed, then arm it -- faults
    # fire only on the measured, live-serving portion of the run.
    for key, value in initial_items(cell.workload):
        kv.put(key, value)
    stack.arm_faults()
    # The population advanced the simulated clock; shift arrivals so
    # the open-loop workload starts "now" instead of in the past.
    t0 = stack.dram_sink.now
    requests = [
        replace(r, arrival_ns=r.arrival_ns + t0)
        for r in generate_requests(cell.workload)
    ]
    scheduler = BatchScheduler(
        kv, policy="batch", seed=cfg.seed,
        clock=lambda: stack.dram_sink.now,
    )
    result = resilient_replay(
        stack, requests, scheduler, cell.resilience, max_batch=cfg.max_batch,
    )
    comps = result.completions
    served = [c for c in comps if c.status == OK]
    status = result.status_counts()
    stats = scheduler.stats()
    sim_s = result.sim_ns / 1e9
    sim: Dict[str, Any] = {
        "requests": len(requests),
        "completions": len(comps),
        "status": {s: status.get(s, 0) for s in STATUSES},
        "availability": (
            status.get(OK, 0) / len(comps) if comps else 0.0
        ),
        "accesses_issued": stats["accesses_issued"],
        "dedup_hits": stats["dedup_hits"],
        "coalesced_puts": stats["coalesced_puts"],
        "absent_gets": stats["absent_gets"],
        "scheduler_timeouts": stats["timeouts"],
        "degraded_reads": result.degraded_reads,
        "journal": {
            "appends": result.journal_appends,
            "replayed": result.journal_replayed,
            "sheds": result.journal_sheds,
        },
        "retries": result.retries,
        "episodes": _episode_block(result.episodes),
        "sim_ns": result.sim_ns,
        "requests_per_s_sim": len(comps) / sim_s if sim_s > 0 else 0.0,
        "latency_ns": _percentiles([c.latency_ns for c in served]),
        "robust": {
            "counters": kv.oram.robust.to_dict(),
            "backoff_stalled_ns": stack.dram_sink.dram.stats.stalled_ns,
        },
    }
    if stack.faulty is not None:
        summary = stack.faulty.summary()
        sim["faults"] = summary
        sim["detection"] = _detection_block(summary)
    security = attacker_block(stack.attacker)
    if security is not None:
        sim["security"] = security
    if want_trace:
        doc = request_trace_doc(
            comps, telemetry.spans, meta=telemetry.meta,
            resilience_events=result.events,
        )
        write_trace(doc, cfg.trace_out)
    return {
        "name": cell.name,
        "wall_s": result.wall_s,
        "requests_per_s_wall": (
            len(comps) / result.wall_s if result.wall_s > 0 else 0.0
        ),
        "sim": sim,
    }


def run_chaos(cfg: Optional[ChaosConfig] = None) -> Dict[str, Any]:
    """Run the chaos campaign and return the report document.

    ``cfg.workers > 1`` fans the independent cells over a spawn pool;
    the ``sim`` blocks are byte-identical to a serial run. A cell whose
    worker raises becomes an ``{"name", "error"}`` entry.
    """
    cfg = cfg or smoke_config()
    if not cfg.cells:
        raise ValueError("config has no cells")
    if cfg.trace_out is not None and cfg.trace_cell is None:
        # Default to the cell expected to enter degraded mode -- the
        # timeline with something to show.
        interesting = next(
            (c for c in cfg.cells if c.expect_episodes), cfg.cells[0]
        )
        cfg = replace(cfg, trace_cell=interesting.name)
    worker_cfg = replace(cfg, progress=None, workers=1)
    outputs = run_cells(
        _chaos_cell_task,
        [Cell(c.name, (worker_cfg, c)) for c in cfg.cells],
        workers=cfg.workers,
        progress=cfg.progress,
    )
    cells: List[Dict[str, Any]] = []
    for cell, res in zip(cfg.cells, outputs):
        if res.ok:
            cells.append(res.value)
        else:
            cells.append({"name": cell.name, "error": res.error})
    return {
        "kind": CHAOS_REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "config": cfg.to_dict(),
        "environment": _environment(),
        "cells": cells,
    }


# -------------------------------------------------------------------- gate

def chaos_check(doc: Dict[str, Any]) -> List[str]:
    """CI gate over one chaos report; returns findings (empty = pass).

    Per cell, from the gate fields its config carries: every injected
    tamper fault (bit flip / replay) must have been detected *while
    serving live load*; availability must not fall below the cell's
    floor; cells expected to inject faults (or enter degraded mode)
    must actually have done so -- a campaign that injected nothing
    proves nothing.
    """
    problems: List[str] = []
    gates = {c["name"]: c for c in doc.get("config", {}).get("cells", [])}
    for cell in doc.get("cells", []):
        name = cell.get("name", "?")
        if "error" in cell:
            problems.append(f"{name}: cell errored, chaos gate unverified")
            continue
        gate = gates.get(name, {})
        sim = cell.get("sim", {})
        avail = sim.get("availability", 0.0)
        floor = gate.get("min_availability", 0.0)
        if avail < floor:
            problems.append(
                f"{name}: availability {avail:.4f} below floor {floor:.4f}"
            )
        det = sim.get("detection")
        if det is not None and det["tamper_detected"] < det["tamper_injected"]:
            problems.append(
                f"{name}: tamper detection gap "
                f"({det['tamper_detected']}/{det['tamper_injected']} detected)"
            )
        if gate.get("expect_faults"):
            injected = sum(
                sim.get("faults", {}).get("injected", {}).get(k, 0)
                for k in FAULT_KINDS
            )
            if injected == 0:
                problems.append(
                    f"{name}: expected fault injection, none fired"
                )
        if gate.get("expect_episodes"):
            if sim.get("episodes", {}).get("count", 0) < 1:
                problems.append(
                    f"{name}: expected degraded-mode episodes, none occurred"
                )
    return problems


__all__ = [
    "ChaosCell",
    "ChaosConfig",
    "TAMPER_KINDS",
    "chaos_check",
    "full_config",
    "run_chaos",
    "smoke_config",
]
