"""The chaos campaign: fault injection under live serving load.

Every cell of ``BENCH_chaos.json`` serves one workload end-to-end on a
*sealed* stack (ChaCha20 + MAC + Merkle) with a
:class:`~repro.faults.memory.FaultyMemory` armed underneath it, through
the resilient serving loop of :mod:`repro.serve.resilience`. Where the
fault campaign of :mod:`repro.faults.campaign` asks "does the memory
detect and recover?", the chaos campaign asks the serving question:
**what did clients experience while it did?** -- availability, tail
latency under fault, shed/timeout counts, time-to-recover.

The cells escalate:

- ``baseline``  -- no faults; the resilient loop must serve exactly
  like the plain one (availability 1.0, nothing shed).
- ``transient`` -- short outages the ORAM-level retry ladder absorbs
  inline; clients see latency, never errors (availability >= 99%).
- ``tamper``    -- bit flips + replays; detection quarantines buckets,
  serving drops to degraded mode (stash-resident reads + write
  journal) and recovers. Detection must be 100%.
- ``outage``    -- long outages past the retry budget plus dropped
  writes, against a small admission queue: the overload story, load
  shedding by policy instead of unbounded queues.

Like ``BENCH_serve.json``, the ``sim`` block of every cell is a pure
function of the config: seeded workload, seeded ORAM, seed-pinned
stateless fault plan, event-based DRAM clock. CI asserts the
deterministic view is byte-identical across runs and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.sharding.control import ControlPlane, ShardEvent, heartbeat_events
from repro.core.sharding.partition import PartitionMap
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.oram.recovery import RobustnessConfig
from repro.parallel.executor import Cell, derive_seed, report_progress, run_cells
from repro.serve.bench import _environment, _percentiles
from repro.serve.loadgen import (
    WorkloadConfig, generate_requests, initial_items,
)
from repro.serve.request import OK, STATUSES
from repro.serve.resilience import ResilienceConfig, resilient_replay
from repro.serve.scheduler import BatchScheduler
from repro.serve.schema import CHAOS_REPORT_KIND, SCHEMA_VERSION
from repro.serve.stack import attacker_block, build_stack
from repro.serve.tracing import request_trace_doc, write_trace

#: Fault kinds whose detection is synchronous at the injection site --
#: the 100%-detection CI gate quantifies over these. ``dropped_write``
#: detection is lazy (a later read of the bucket) and ``unavailable``
#: is overt (the error *is* the fault), so neither belongs in the gate.
TAMPER_KINDS = ("bit_flip", "replay")


@dataclass(frozen=True)
class ChaosCell:
    """One campaign cell: a workload, a fault plan, a survival policy.

    The ``min_availability`` / ``expect_*`` fields are the cell's CI
    gate, carried inside the report config so :func:`chaos_check` needs
    nothing but the document.
    """

    name: str
    workload: WorkloadConfig
    faults: Optional[FaultPlan]
    resilience: ResilienceConfig
    min_availability: float = 0.0
    expect_faults: bool = False
    expect_episodes: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload.to_dict(),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "resilience": self.resilience.to_dict(),
            "min_availability": self.min_availability,
            "expect_faults": self.expect_faults,
            "expect_episodes": self.expect_episodes,
        }


@dataclass
class ChaosConfig:
    """One chaos-harness invocation (the report's ``config`` block)."""

    scheme: str = "ab"
    levels: int = 8
    seed: int = 0
    max_batch: int = 16
    #: ORAM-level recovery policy every cell's stack runs under. The
    #: retry budget comfortably exceeds the transient cell's longest
    #: outage so short blips recover inline, never via quarantine.
    robustness: RobustnessConfig = field(
        default_factory=lambda: RobustnessConfig(
            integrity=True, retry_budget=6,
        )
    )
    cells: Sequence[ChaosCell] = ()
    smoke: bool = False
    workers: int = 1
    progress: Any = None   # callable(str) for live cell updates
    trace_out: Optional[str] = None
    trace_cell: Optional[str] = None
    #: ``num_shards > 1`` runs every cell as a partitioned fleet: the
    #: workload is split by the keyed-PRF partition map, each shard
    #: serves its slice on an independent seeded stack (with a
    #: per-shard derived fault plan), and the parent folds the shard
    #: results, drives the control plane, evaluates SLOs and merges
    #: the distributed trace. ``num_shards == 1`` is the exact PR-7
    #: single-stack path.
    num_shards: int = 1
    heartbeat_ns: float = 100_000.0
    #: Simulated window the SLO engine and ops sampler fold on.
    slo_window_ns: float = 50_000.0
    #: JSONL output paths (sharded campaigns only): the SLO event
    #: stream and the per-shard ops stream ``serve top`` replays.
    slo_out: Optional[str] = None
    ops_out: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "levels": self.levels,
            "seed": self.seed,
            "max_batch": self.max_batch,
            "robustness": self.robustness.to_dict(),
            "cells": [c.to_dict() for c in self.cells],
            "smoke": self.smoke,
            "num_shards": self.num_shards,
            "heartbeat_ns": self.heartbeat_ns,
            "slo_window_ns": self.slo_window_ns,
        }


# ------------------------------------------------------------------- cells

def _mix(name: str, n_requests: int, stored_keys: int, **kw: Any) -> WorkloadConfig:
    base: Dict[str, Any] = dict(
        name=name,
        n_requests=n_requests,
        n_keys=4_000,
        stored_keys=stored_keys,
        arrival="poisson",
        rate_rps=1_000_000.0,
        zipf_s=0.9,
        read_fraction=0.8,
        delete_fraction=0.02,
        value_bytes=40,
        expect_dedup=False,
    )
    base.update(kw)
    return WorkloadConfig(**base)


def _smoke_cells() -> Tuple[ChaosCell, ...]:
    wl = _mix("chaos-mix", 240, 64)
    return (
        ChaosCell(
            name="baseline",
            workload=wl,
            faults=None,
            resilience=ResilienceConfig(),
            min_availability=1.0,
        ),
        ChaosCell(
            name="transient",
            workload=wl,
            faults=FaultPlan(
                seed=101, rates={"unavailable": 0.02}, max_outage_ops=2,
            ),
            resilience=ResilienceConfig(
                deadline_ns=5_000_000.0, queue_limit=64,
            ),
            min_availability=0.99,
            expect_faults=True,
        ),
        ChaosCell(
            name="tamper",
            workload=wl,
            faults=FaultPlan(
                seed=202, rates={"bit_flip": 0.006, "replay": 0.005},
            ),
            resilience=ResilienceConfig(
                deadline_ns=4_000_000.0, queue_limit=128,
                retry_budget=8, backoff_base_ns=5_000.0,
                backoff_factor=1.6,
                journal_limit=96, repair_ns=30_000.0,
            ),
            min_availability=0.90,
            expect_faults=True,
            expect_episodes=True,
        ),
        ChaosCell(
            name="outage",
            workload=_mix(
                "chaos-burst", 240, 64,
                arrival="bursty", rate_rps=900_000.0, burst_factor=5.0,
            ),
            faults=FaultPlan(
                seed=303,
                rates={"unavailable": 0.015, "dropped_write": 0.01},
                max_outage_ops=10,
            ),
            resilience=ResilienceConfig(
                deadline_ns=600_000.0, queue_limit=12,
                shed_policy="drop-oldest",
                retry_budget=4, backoff_base_ns=8_000.0,
                journal_limit=32, repair_ns=25_000.0,
            ),
            min_availability=0.60,
            expect_faults=True,
        ),
    )


def _full_cells() -> Tuple[ChaosCell, ...]:
    scaled = []
    for cell in _smoke_cells():
        wl = replace(cell.workload, n_requests=1200, stored_keys=160)
        scaled.append(replace(cell, workload=wl))
    return tuple(scaled)


def smoke_config(**overrides: Any) -> ChaosConfig:
    """Seconds-scale campaign for CI."""
    base = ChaosConfig(cells=_smoke_cells(), smoke=True)
    return replace(base, **overrides)


def full_config(**overrides: Any) -> ChaosConfig:
    """The nightly soak: same cells, 5x the load, a deeper tree."""
    base = ChaosConfig(levels=10, cells=_full_cells(), smoke=False)
    return replace(base, **overrides)


# ------------------------------------------------------------------ runner

def _episode_block(episodes: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    spans = [e["exit_ns"] - e["enter_ns"] for e in episodes]
    return {
        "count": len(episodes),
        "recover_ns_mean": sum(spans) / len(spans) if spans else 0.0,
        "recover_ns_max": max(spans) if spans else 0.0,
        "rebuilt": sum(e["rebuilt"] for e in episodes),
        "journal_replayed": sum(e["journal_replayed"] for e in episodes),
    }


def _detection_block(summary: Dict[str, Any]) -> Dict[str, Any]:
    injected = sum(summary["injected"][k] for k in TAMPER_KINDS)
    detected = sum(summary["detected"][k] for k in TAMPER_KINDS)
    return {
        "tamper_injected": injected,
        "tamper_detected": detected,
        "rate": detected / injected if injected else 1.0,
    }


def _chaos_cell_task(payload: Tuple[ChaosConfig, ChaosCell]) -> Dict[str, Any]:
    """One campaign cell, runnable in-process or in a spawn worker."""
    cfg, cell = payload
    report_progress(f"chaos {cell.name} ...")
    want_trace = cfg.trace_out is not None and cfg.trace_cell == cell.name
    telemetry = None
    if want_trace:
        from repro.telemetry import Telemetry
        telemetry = Telemetry(meta={
            "cell": cell.name, "scheme": cfg.scheme,
            "levels": cfg.levels, "seed": cfg.seed,
        })
    stack = build_stack(
        scheme=cfg.scheme, levels=cfg.levels, seed=cfg.seed,
        telemetry=telemetry, observer=True,
        robustness=cfg.robustness, fault_plan=cell.faults,
    )
    kv = stack.kv
    # Sealed stacks cannot bulk-preload: populate through real puts
    # while the fault wrapper is still disarmed, then arm it -- faults
    # fire only on the measured, live-serving portion of the run.
    for key, value in initial_items(cell.workload):
        kv.put(key, value)
    stack.arm_faults()
    # The population advanced the simulated clock; shift arrivals so
    # the open-loop workload starts "now" instead of in the past.
    t0 = stack.dram_sink.now
    requests = [
        replace(r, arrival_ns=r.arrival_ns + t0)
        for r in generate_requests(cell.workload)
    ]
    scheduler = BatchScheduler(
        kv, policy="batch", seed=cfg.seed,
        clock=lambda: stack.dram_sink.now,
    )
    result = resilient_replay(
        stack, requests, scheduler, cell.resilience, max_batch=cfg.max_batch,
    )
    comps = result.completions
    served = [c for c in comps if c.status == OK]
    status = result.status_counts()
    stats = scheduler.stats()
    sim_s = result.sim_ns / 1e9
    sim: Dict[str, Any] = {
        "requests": len(requests),
        "completions": len(comps),
        "status": {s: status.get(s, 0) for s in STATUSES},
        "availability": (
            status.get(OK, 0) / len(comps) if comps else 0.0
        ),
        "accesses_issued": stats["accesses_issued"],
        "dedup_hits": stats["dedup_hits"],
        "coalesced_puts": stats["coalesced_puts"],
        "absent_gets": stats["absent_gets"],
        "scheduler_timeouts": stats["timeouts"],
        "degraded_reads": result.degraded_reads,
        "journal": {
            "appends": result.journal_appends,
            "replayed": result.journal_replayed,
            "sheds": result.journal_sheds,
        },
        "retries": result.retries,
        "episodes": _episode_block(result.episodes),
        "sim_ns": result.sim_ns,
        "requests_per_s_sim": len(comps) / sim_s if sim_s > 0 else 0.0,
        "latency_ns": _percentiles([c.latency_ns for c in served]),
        "robust": {
            "counters": kv.oram.robust.to_dict(),
            "backoff_stalled_ns": stack.dram_sink.dram.stats.stalled_ns,
        },
    }
    if stack.faulty is not None:
        summary = stack.faulty.summary()
        sim["faults"] = summary
        sim["detection"] = _detection_block(summary)
    security = attacker_block(stack.attacker)
    if security is not None:
        sim["security"] = security
    if want_trace:
        doc = request_trace_doc(
            comps, telemetry.spans, meta=telemetry.meta,
            resilience_events=result.events,
        )
        write_trace(doc, cfg.trace_out)
    return {
        "name": cell.name,
        "wall_s": result.wall_s,
        "requests_per_s_wall": (
            len(comps) / result.wall_s if result.wall_s > 0 else 0.0
        ),
        "sim": sim,
    }


# ----------------------------------------------------------- sharded runner

def _cell_slo_rules(cell: ChaosCell) -> Tuple[Any, ...]:
    """Derive a cell's SLO rule set from its CI gate fields."""
    from repro.telemetry import default_slo_rules
    deadline = cell.resilience.deadline_ns
    return default_slo_rules(
        min_availability=cell.min_availability,
        p99_ns=deadline if deadline > 0 else 2_000_000.0,
        detection=cell.expect_faults,
    )


def _sum_tree(blocks: Sequence[Any]) -> Any:
    """Element-wise sum of parallel dict-of-numbers trees."""
    if isinstance(blocks[0], dict):
        return {k: _sum_tree([b[k] for b in blocks]) for k in blocks[0]}
    return sum(blocks)


def _chaos_shard_task(
    payload: Tuple[ChaosConfig, ChaosCell, int],
) -> Dict[str, Any]:
    """One shard of one campaign cell, runnable in a spawn worker.

    The shard serves exactly the keys the fleet-wide keyed-PRF
    partition map assigns it, on an independently seeded stack with an
    independently seeded fault plan -- the same discipline the sharded
    simulator uses, so the split never depends on which process runs it.
    """
    cfg, cell, shard = payload
    report_progress(f"chaos {cell.name}/s{shard} ...")
    pmap = PartitionMap(cfg.num_shards, seed=cfg.seed)
    stack_seed = derive_seed(cfg.seed, f"shard:{shard}")
    faults = cell.faults
    if faults is not None:
        faults = replace(
            faults, seed=derive_seed(faults.seed, f"shard:{shard}"),
        )
    want_trace = cfg.trace_out is not None and cfg.trace_cell == cell.name
    telemetry = None
    if want_trace:
        from repro.telemetry import Telemetry
        telemetry = Telemetry(meta={
            "cell": cell.name, "shard": shard, "scheme": cfg.scheme,
            "levels": cfg.levels, "seed": cfg.seed,
        })
    stack = build_stack(
        scheme=cfg.scheme, levels=cfg.levels, seed=stack_seed,
        telemetry=telemetry, observer=True,
        robustness=cfg.robustness, fault_plan=faults,
    )
    kv = stack.kv
    for key, value in initial_items(cell.workload):
        if pmap.shard_of_bytes(key) == shard:
            kv.put(key, value)
    stack.arm_faults()
    t0 = stack.dram_sink.now
    requests = [
        replace(r, arrival_ns=r.arrival_ns + t0)
        for r in generate_requests(cell.workload)
        if pmap.shard_of_bytes(r.key) == shard
    ]
    scheduler = BatchScheduler(
        kv, policy="batch", seed=stack_seed,
        clock=lambda: stack.dram_sink.now,
    )
    sampler = None
    if cfg.ops_out is not None:
        from repro.telemetry import OpsSampler
        sampler = OpsSampler(cell.name, shard, cfg.slo_window_ns, stack)
    result = resilient_replay(
        stack, requests, scheduler, cell.resilience,
        max_batch=cfg.max_batch, sampler=sampler,
    )
    comps = result.completions
    served = [c for c in comps if c.status == OK]
    status = result.status_counts()
    stats = scheduler.stats()
    partial: Dict[str, Any] = {
        "shard": shard,
        "requests": len(requests),
        "completions": len(comps),
        "status": {s: status.get(s, 0) for s in STATUSES},
        "availability": (
            status.get(OK, 0) / len(comps) if comps else 0.0
        ),
        "accesses_issued": stats["accesses_issued"],
        "dedup_hits": stats["dedup_hits"],
        "coalesced_puts": stats["coalesced_puts"],
        "absent_gets": stats["absent_gets"],
        "scheduler_timeouts": stats["timeouts"],
        "degraded_reads": result.degraded_reads,
        "journal": {
            "appends": result.journal_appends,
            "replayed": result.journal_replayed,
            "sheds": result.journal_sheds,
        },
        "retries": result.retries,
        "episodes": len(result.episodes),
        "robust": {
            "counters": kv.oram.robust.to_dict(),
            "backoff_stalled_ns": stack.dram_sink.dram.stats.stalled_ns,
        },
        "start_ns": result.start_ns,
        "end_ns": result.end_ns,
    }
    if stack.faulty is not None:
        partial["faults"] = stack.faulty.summary()
    return {
        "partial": partial,
        "episode_list": list(result.episodes),
        "latencies": [c.latency_ns for c in served],
        "completions": comps,
        "spans": list(telemetry.spans) if want_trace else None,
        "events": list(result.events) if want_trace else None,
        "ops_records": list(sampler.records) if sampler is not None else [],
        "wall_s": result.wall_s,
    }


def _merge_shard_cell(
    cfg: ChaosConfig,
    cell: ChaosCell,
    outputs: Sequence[Dict[str, Any]],
) -> Tuple[Dict[str, Any], Any]:
    """Fold one cell's shard outputs into a report cell + SLO engine.

    Counts sum; latency percentiles re-derive from the concatenated
    per-shard served latencies (shard order, so the fold is a pure
    function of the outputs); the control plane replays every shard's
    heartbeat train and degraded markers on one merged timeline; the
    SLO engine folds the fleet's completion stream in ``(done_ns,
    rid)`` order. Everything the ``sim`` block carries is derived from
    worker-returned simulated state only -- byte-identical at any
    worker count.
    """
    from repro.telemetry import SloEngine, fold_completions

    outputs = sorted(outputs, key=lambda o: o["partial"]["shard"])
    partials = [o["partial"] for o in outputs]
    episodes = [e for o in outputs for e in o["episode_list"]]
    latencies = [lat for o in outputs for lat in o["latencies"]]
    n_requests = sum(p["requests"] for p in partials)
    n_comps = sum(p["completions"] for p in partials)
    status = {
        s: sum(p["status"][s] for p in partials) for s in STATUSES
    }
    start_ns = min(p["start_ns"] for p in partials)
    end_ns = max(p["end_ns"] for p in partials)
    sim_ns = end_ns - start_ns
    sim_s = sim_ns / 1e9
    sim: Dict[str, Any] = {
        "requests": n_requests,
        "completions": n_comps,
        "status": status,
        "availability": status.get(OK, 0) / n_comps if n_comps else 0.0,
        "accesses_issued": sum(p["accesses_issued"] for p in partials),
        "dedup_hits": sum(p["dedup_hits"] for p in partials),
        "coalesced_puts": sum(p["coalesced_puts"] for p in partials),
        "absent_gets": sum(p["absent_gets"] for p in partials),
        "scheduler_timeouts": sum(
            p["scheduler_timeouts"] for p in partials
        ),
        "degraded_reads": sum(p["degraded_reads"] for p in partials),
        "journal": _sum_tree([p["journal"] for p in partials]),
        "retries": sum(p["retries"] for p in partials),
        "episodes": _episode_block(episodes),
        "sim_ns": sim_ns,
        "requests_per_s_sim": n_comps / sim_s if sim_s > 0 else 0.0,
        "latency_ns": _percentiles(latencies),
        "robust": _sum_tree([p["robust"] for p in partials]),
        "shards": partials,
    }
    if any("faults" in p for p in partials):
        faults = _sum_tree([p["faults"] for p in partials if "faults" in p])
        sim["faults"] = faults
        sim["detection"] = _detection_block(faults)
    # Control plane: every shard's deterministic heartbeat train plus
    # its degraded-episode markers, merged into one fleet timeline.
    plane_events: List[ShardEvent] = []
    for o in outputs:
        p = o["partial"]
        plane_events.extend(heartbeat_events(
            p["shard"], p["start_ns"], p["end_ns"], cfg.heartbeat_ns,
        ))
        for e in o["episode_list"]:
            plane_events.append(ShardEvent(
                p["shard"], "degraded_enter", e["enter_ns"],
            ))
            plane_events.append(ShardEvent(
                p["shard"], "degraded_exit", e["exit_ns"],
            ))
    control = ControlPlane(cfg.heartbeat_ns, miss_after=3)
    control.run(plane_events)
    sim["control"] = control.summary()
    engine = SloEngine(_cell_slo_rules(cell), cfg.slo_window_ns)
    fold_completions(
        engine, [c for o in outputs for c in o["completions"]],
    )
    sim["slo"] = engine.finish(end_ns, detection=sim.get("detection"))
    wall_s = sum(o["wall_s"] for o in outputs)
    return {
        "name": cell.name,
        "wall_s": wall_s,
        "requests_per_s_wall": n_comps / wall_s if wall_s > 0 else 0.0,
        "sim": sim,
    }, engine


def _write_jsonl(path: str, records: Sequence[Dict[str, Any]]) -> None:
    import json
    with open(path, "w") as f:
        for record in records:
            f.write(json.dumps(record, sort_keys=True) + "\n")


def _run_chaos_sharded(cfg: ChaosConfig) -> Dict[str, Any]:
    """The fleet campaign: every cell partitioned over ``num_shards``."""
    from repro.telemetry import ShardFragment, fleet_trace_doc
    from repro.telemetry.fleet import SLO_TID

    worker_cfg = replace(cfg, progress=None, workers=1)
    tasks = [
        Cell(f"{c.name}/s{k}", (worker_cfg, c, k))
        for c in cfg.cells for k in range(cfg.num_shards)
    ]
    outputs = run_cells(
        _chaos_shard_task, tasks,
        workers=cfg.workers, progress=cfg.progress,
    )
    cells: List[Dict[str, Any]] = []
    slo_stream: List[Dict[str, Any]] = [{
        "type": "meta", "kind": "repro-slo-stream",
        "schema_version": SCHEMA_VERSION, "seed": cfg.seed,
        "num_shards": cfg.num_shards, "window_ns": cfg.slo_window_ns,
    }]
    ops_stream: List[Dict[str, Any]] = [{
        "type": "meta", "kind": "repro-ops-stream",
        "schema_version": SCHEMA_VERSION, "seed": cfg.seed,
        "num_shards": cfg.num_shards, "window_ns": cfg.slo_window_ns,
    }]
    slo_summaries: Dict[str, Any] = {}
    for i, cell in enumerate(cfg.cells):
        chunk = outputs[i * cfg.num_shards:(i + 1) * cfg.num_shards]
        errors = [res.error for res in chunk if not res.ok]
        if errors:
            cells.append({"name": cell.name, "error": errors[0]})
            continue
        shard_outputs = [res.value for res in chunk]
        merged, engine = _merge_shard_cell(cfg, cell, shard_outputs)
        cells.append(merged)
        alerts = [
            {**r, "cell": cell.name} for r in engine.records
            if r["type"] == "slo_alert"
        ]
        slo_stream.extend(
            {**r, "cell": cell.name} for r in engine.records
        )
        slo_summaries[cell.name] = merged["sim"]["slo"]
        snapshots = [
            snap for o in shard_outputs for snap in o["ops_records"]
        ]
        snapshots.sort(key=lambda s: (s["window"], s["shard"]))
        ops_stream.extend(snapshots)
        ops_stream.extend(alerts)
        if cfg.trace_out is not None and cfg.trace_cell == cell.name:
            fragments = [
                ShardFragment(
                    shard=o["partial"]["shard"],
                    completions=o["completions"],
                    spans=o["spans"] or [],
                    events=o["events"] or [],
                    start_ns=o["partial"]["start_ns"],
                    end_ns=o["partial"]["end_ns"],
                )
                for o in shard_outputs
            ]
            doc = fleet_trace_doc(
                fragments, seed=cfg.seed,
                meta={
                    "cell": cell.name, "scheme": cfg.scheme,
                    "levels": cfg.levels, "seed": cfg.seed,
                    "num_shards": cfg.num_shards,
                },
                control=merged["sim"]["control"],
                slo_instants=engine.trace_instants(SLO_TID),
            )
            write_trace(doc, cfg.trace_out)
    slo_stream.append({"type": "summary", "cells": slo_summaries})
    ops_stream.append({"type": "summary", "cells": slo_summaries})
    if cfg.slo_out is not None:
        _write_jsonl(cfg.slo_out, slo_stream)
    if cfg.ops_out is not None:
        _write_jsonl(cfg.ops_out, ops_stream)
    return {
        "kind": CHAOS_REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "config": cfg.to_dict(),
        "environment": _environment(),
        "cells": cells,
    }


def run_chaos(cfg: Optional[ChaosConfig] = None) -> Dict[str, Any]:
    """Run the chaos campaign and return the report document.

    ``cfg.workers > 1`` fans the independent cells over a spawn pool;
    the ``sim`` blocks are byte-identical to a serial run. A cell whose
    worker raises becomes an ``{"name", "error"}`` entry.

    ``cfg.num_shards > 1`` partitions every cell over a fleet of
    independently seeded shard stacks (one spawn cell per shard), folds
    the shard results through the control plane and the streaming SLO
    engine, and -- for the traced cell -- merges every shard's spans
    into one distributed Perfetto trace.
    """
    cfg = cfg or smoke_config()
    if not cfg.cells:
        raise ValueError("config has no cells")
    if cfg.trace_out is not None and cfg.trace_cell is None:
        # Default to the cell expected to enter degraded mode -- the
        # timeline with something to show.
        interesting = next(
            (c for c in cfg.cells if c.expect_episodes), cfg.cells[0]
        )
        cfg = replace(cfg, trace_cell=interesting.name)
    if cfg.num_shards > 1:
        return _run_chaos_sharded(cfg)
    worker_cfg = replace(cfg, progress=None, workers=1)
    outputs = run_cells(
        _chaos_cell_task,
        [Cell(c.name, (worker_cfg, c)) for c in cfg.cells],
        workers=cfg.workers,
        progress=cfg.progress,
    )
    cells: List[Dict[str, Any]] = []
    for cell, res in zip(cfg.cells, outputs):
        if res.ok:
            cells.append(res.value)
        else:
            cells.append({"name": cell.name, "error": res.error})
    return {
        "kind": CHAOS_REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "config": cfg.to_dict(),
        "environment": _environment(),
        "cells": cells,
    }


# -------------------------------------------------------------------- gate

def chaos_check(doc: Dict[str, Any]) -> List[str]:
    """CI gate over one chaos report; returns findings (empty = pass).

    Per cell, from the gate fields its config carries: every injected
    tamper fault (bit flip / replay) must have been detected *while
    serving live load*; availability must not fall below the cell's
    floor; cells expected to inject faults (or enter degraded mode)
    must actually have done so -- a campaign that injected nothing
    proves nothing.
    """
    problems: List[str] = []
    gates = {c["name"]: c for c in doc.get("config", {}).get("cells", [])}
    for cell in doc.get("cells", []):
        name = cell.get("name", "?")
        if "error" in cell:
            problems.append(f"{name}: cell errored, chaos gate unverified")
            continue
        gate = gates.get(name, {})
        sim = cell.get("sim", {})
        avail = sim.get("availability", 0.0)
        floor = gate.get("min_availability", 0.0)
        if avail < floor:
            problems.append(
                f"{name}: availability {avail:.4f} below floor {floor:.4f}"
            )
        det = sim.get("detection")
        if det is not None and det["tamper_detected"] < det["tamper_injected"]:
            problems.append(
                f"{name}: tamper detection gap "
                f"({det['tamper_detected']}/{det['tamper_injected']} detected)"
            )
        if gate.get("expect_faults"):
            injected = sum(
                sim.get("faults", {}).get("injected", {}).get(k, 0)
                for k in FAULT_KINDS
            )
            if injected == 0:
                problems.append(
                    f"{name}: expected fault injection, none fired"
                )
        if gate.get("expect_episodes"):
            if sim.get("episodes", {}).get("count", 0) < 1:
                problems.append(
                    f"{name}: expected degraded-mode episodes, none occurred"
                )
    return problems


__all__ = [
    "ChaosCell",
    "ChaosConfig",
    "TAMPER_KINDS",
    "chaos_check",
    "full_config",
    "run_chaos",
    "smoke_config",
]
