"""The capacity curve: fleet throughput and memory vs shard count.

``BENCH_scaling.json`` answers the horizontal-scale question the
serving harness cannot: how does served throughput grow, and per-shard
memory shrink, as one workload spreads over 1..16 AB-ORAM shards?
Every cell is one fleet run (:func:`repro.core.sharding.fleet.run_fleet`)
of the *same* workload at a given ``(total_blocks, shards)`` point:

- **Throughput** is measured: the fleet's simulated-DRAM makespan for
  the workload (slowest shard's serving window) and the aggregate
  DRAM-ns per request derived from it. The smoke gate asserts
  ``ns_per_request`` at shards=1 over shards=4 clears
  ``config.min_speedup`` (>= 3x; perfect scaling would be ~4x, the gap
  is the PRF-balanced hot shard).
- **Memory** is analytic: each shard needs the smallest tree that
  holds its slice of the block universe --
  ``ceil(total_blocks / shards)`` plus a 5% PRF-imbalance margin --
  so the ``memory`` block reports per-shard tree depth/bytes and the
  fleet total next to the single-tree depth/bytes the same universe
  would need unsharded. Tree geometry is closed-form
  (:attr:`~repro.oram.config.OramConfig.tree_bytes`), so the 2^24
  point costs no 16M-block simulation.

Measured serving runs at ``config.measured_levels`` for *every* shard
count of a row (same per-access cost everywhere, so the throughput
ratio isolates the fleet effect), mirroring the repo's standing
pattern of timing at reduced depth while the space math runs at true
depth. Workloads drive arrivals at a rate far above any shard's
service rate, so cells are service-bound and the makespan measures
capacity, not arrival spacing.

One row carries a :class:`~repro.core.sharding.fleet.KillShardDrill`:
the kill-a-shard-under-load cell, whose gates (availability floor,
degraded episodes happened, tamper detection 100%, control plane back
to all-healthy) ride in the config like the chaos campaign's do.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.core import schemes as schemes_mod
# NOTE: repro.core.sharding.fleet is imported lazily inside the
# functions that need it. fleet.py imports the serve layer's workload
# and stack machinery, and this module is part of ``repro.serve``'s
# package surface -- a module-level import here closes the cycle when
# ``repro.core.sharding`` is the first package imported.
from repro.core.sharding.sharded import levels_for_blocks
from repro.faults.plan import FaultPlan
from repro.serve.bench import _environment
from repro.serve.loadgen import WorkloadConfig
from repro.serve.resilience import ResilienceConfig
from repro.serve.schema import SCALING_REPORT_KIND, SCHEMA_VERSION

#: Extra per-shard capacity provisioned over the even split, absorbing
#: the PRF's occupancy imbalance (a 5% margin covers the multinomial
#: spread at every (blocks, shards) point the matrix visits).
IMBALANCE_MARGIN = 1.05


@dataclass(frozen=True)
class ScalingCell:
    """One capacity point: a workload at (total_blocks, shards)."""

    name: str
    total_blocks: int
    shards: int
    workload: WorkloadConfig
    drill: Optional[KillShardDrill] = None

    def __post_init__(self) -> None:
        if self.total_blocks < 1:
            raise ValueError("total_blocks must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "total_blocks": self.total_blocks,
            "shards": self.shards,
            "workload": self.workload.to_dict(),
            "drill": None if self.drill is None else self.drill.to_dict(),
        }


@dataclass
class ScalingConfig:
    """One capacity-curve invocation (the report's ``config`` block)."""

    scheme: str = "ab"
    #: Tree depth every measured shard serves at (uniform across shard
    #: counts so the throughput ratio isolates the fleet effect).
    measured_levels: int = 9
    seed: int = 0
    max_batch: int = 32
    policy: str = "batch"
    #: The s1-over-s4 ns-per-request gate :func:`scaling_check` applies
    #: to every block row that carries both shard counts.
    min_speedup: float = 3.0
    heartbeat_ns: float = 100_000.0
    miss_after: int = 3
    cells: Sequence[ScalingCell] = ()
    smoke: bool = False
    workers: int = 1
    progress: Any = None   # callable(str) for live shard updates

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "measured_levels": self.measured_levels,
            "seed": self.seed,
            "max_batch": self.max_batch,
            "policy": self.policy,
            "min_speedup": self.min_speedup,
            "heartbeat_ns": self.heartbeat_ns,
            "miss_after": self.miss_after,
            "cells": [c.to_dict() for c in self.cells],
            "smoke": self.smoke,
        }


# ------------------------------------------------------------------- matrix

def _capacity_workload(
    name: str, n_requests: int, stored_keys: int
) -> WorkloadConfig:
    """A service-bound capacity workload.

    The arrival rate is set orders of magnitude above any shard's
    service rate, so effectively the whole workload is queued at t=0
    and the serving window measures pure capacity. Moderate zipf skew
    keeps the hot shard's share near the even split -- the curve
    measures fleet scaling, not one pathological key.
    """
    return WorkloadConfig(
        name=name,
        n_requests=n_requests,
        n_keys=100_000,
        stored_keys=stored_keys,
        arrival="poisson",
        rate_rps=1e8,
        zipf_s=0.7,
        read_fraction=0.85,
        value_bytes=48,
        expect_dedup=False,
    )


def _drill(shard: int, min_availability: float = 0.90) -> "KillShardDrill":
    """The standard kill-a-shard drill: tamper faults under one shard."""
    from repro.core.sharding.fleet import KillShardDrill
    return KillShardDrill(
        shard=shard,
        faults=FaultPlan(
            seed=202, rates={"bit_flip": 0.006, "replay": 0.005},
        ),
        resilience=ResilienceConfig(
            deadline_ns=4_000_000.0, queue_limit=128,
            retry_budget=8, backoff_base_ns=5_000.0, backoff_factor=1.6,
            journal_limit=96, repair_ns=30_000.0,
        ),
        min_availability=min_availability,
    )


def smoke_config(**overrides: Any) -> ScalingConfig:
    """Seconds-scale curve for CI: one 2^16-block row plus the drill."""
    wl = _capacity_workload("cap-64k", n_requests=600, stored_keys=500)
    blocks = 2 ** 16
    cells = tuple(
        ScalingCell(
            name="cap-64k", total_blocks=blocks, shards=s, workload=wl,
        )
        for s in (1, 2, 4)
    ) + (
        ScalingCell(
            name="drill-64k", total_blocks=blocks, shards=4, workload=wl,
            drill=_drill(shard=0),
        ),
    )
    base = ScalingConfig(cells=cells, smoke=True)
    return replace(base, **overrides)


def full_config(**overrides: Any) -> ScalingConfig:
    """The nightly curve: blocks 2^16 -> 2^24, shards 1 -> 16."""
    rows = (
        ("cap-64k", 2 ** 16, (1, 4)),
        ("cap-1m", 2 ** 20, (1, 4, 8)),
        ("cap-16m", 2 ** 24, (1, 4, 8, 16)),
    )
    cells: List[ScalingCell] = []
    for name, blocks, shard_counts in rows:
        wl = _capacity_workload(name, n_requests=2000, stored_keys=1000)
        cells.extend(
            ScalingCell(
                name=name, total_blocks=blocks, shards=s, workload=wl,
            )
            for s in shard_counts
        )
    # The fleet soak: kill one of eight shards under the 2^20 row.
    cells.append(ScalingCell(
        name="drill-1m", total_blocks=2 ** 20, shards=8,
        workload=_capacity_workload("drill-1m", 2000, 1000),
        drill=_drill(shard=0),
    ))
    base = ScalingConfig(
        measured_levels=10, cells=tuple(cells), smoke=False,
    )
    return replace(base, **overrides)


# ------------------------------------------------------------------- runner

def memory_block(
    scheme: str, total_blocks: int, shards: int
) -> Dict[str, int]:
    """Analytic per-shard and fleet memory at true capacity depth."""
    if shards == 1:
        target = total_blocks
    else:
        target = int(-(-(total_blocks * IMBALANCE_MARGIN) // shards))
    shard_levels = levels_for_blocks(scheme, target)
    per_shard = schemes_mod.by_name(scheme, shard_levels).tree_bytes
    single_levels = levels_for_blocks(scheme, total_blocks)
    single = schemes_mod.by_name(scheme, single_levels).tree_bytes
    return {
        "per_shard_capacity": target,
        "shard_levels": shard_levels,
        "per_shard_bytes": int(per_shard),
        "fleet_bytes": int(per_shard) * shards,
        "single_tree_levels": single_levels,
        "single_tree_bytes": int(single),
    }


def _run_one_cell(cfg: ScalingConfig, cell: ScalingCell) -> Dict[str, Any]:
    from repro.core.sharding.fleet import FleetConfig, run_fleet
    fleet_cfg = FleetConfig(
        workload=cell.workload,
        scheme=cfg.scheme,
        levels=cfg.measured_levels,
        num_shards=cell.shards,
        seed=cfg.seed,
        max_batch=cfg.max_batch,
        policy=cfg.policy,
        drill=cell.drill,
        heartbeat_ns=cfg.heartbeat_ns,
        miss_after=cfg.miss_after,
        workers=cfg.workers,
        progress=cfg.progress,
    )
    wall0 = time.perf_counter()
    doc = run_fleet(fleet_cfg)
    wall_s = time.perf_counter() - wall0
    if "error" in doc:
        failed = [s for s in doc["shards"] if "error" in s]
        raise RuntimeError(
            f"{len(failed)} shard(s) failed:\n"
            + "\n".join(s["error"] for s in failed)
        )
    return {
        "name": cell.name,
        "shards": cell.shards,
        "total_blocks": cell.total_blocks,
        "drill": cell.drill is not None,
        "wall_s": wall_s,
        "memory": memory_block(cfg.scheme, cell.total_blocks, cell.shards),
        "sim": {
            "fleet": doc["fleet"],
            "shards": doc["shards"],
            "control": doc["control"],
        },
    }


def run_scaling(cfg: Optional[ScalingConfig] = None) -> Dict[str, Any]:
    """Run the capacity matrix and return the report document.

    Cells run serially in the parent; ``cfg.workers > 1`` parallelizes
    *within* each fleet (one spawn worker per shard), which is the
    configuration the serial==workers determinism gate compares. A cell
    whose fleet raises becomes an ``{"name", "shards", "error"}``
    entry.
    """
    cfg = cfg or smoke_config()
    if not cfg.cells:
        raise ValueError("config has no cells")
    cells: List[Dict[str, Any]] = []
    for cell in cfg.cells:
        if cfg.progress is not None:
            cfg.progress(f"scaling {cell.name}@s{cell.shards} ...")
        try:
            cells.append(_run_one_cell(cfg, cell))
        except Exception as exc:
            cells.append({
                "name": cell.name,
                "shards": cell.shards,
                "error": f"{type(exc).__name__}: {exc}\n"
                         f"{traceback.format_exc()}",
            })
    return {
        "kind": SCALING_REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "config": cfg.to_dict(),
        "environment": _environment(),
        "cells": cells,
    }


# --------------------------------------------------------------------- gate

def scaling_check(
    doc: Dict[str, Any], min_speedup: Optional[float] = None
) -> List[str]:
    """CI gate over one scaling report; returns findings (empty = pass).

    - every block row carrying shards=1 and shards=4 must show
      ``ns_per_request(s1) / ns_per_request(s4) >= min_speedup``
      (argument overrides ``config.min_speedup``);
    - fleets without a drill must serve everything (availability 1.0);
    - drill cells must stay above their availability floor, record at
      least one degraded episode on the drilled shard, detect every
      injected tamper fault, and end with the control plane
      all-healthy;
    - every fleet (drilled or not) must end all-healthy.
    """
    problems: List[str] = []
    config = doc.get("config", {})
    floor = (
        min_speedup if min_speedup is not None
        else config.get("min_speedup", 0.0)
    )
    gates = {
        (c["name"], c["shards"]): c for c in config.get("cells", [])
    }
    rows: Dict[int, Dict[int, float]] = {}
    for cell in doc.get("cells", []):
        label = f"{cell.get('name', '?')}@s{cell.get('shards', '?')}"
        if "error" in cell:
            problems.append(f"{label}: cell errored, scaling gate unverified")
            continue
        sim = cell.get("sim", {})
        fleet = sim.get("fleet", {})
        control = sim.get("control", {})
        if not control.get("all_healthy", False):
            problems.append(f"{label}: fleet did not end all-healthy")
        gate = gates.get((cell.get("name"), cell.get("shards")), {})
        drill = gate.get("drill")
        if not cell.get("drill", False):
            rows.setdefault(cell["total_blocks"], {})[cell["shards"]] = (
                fleet.get("ns_per_request", 0.0)
            )
            if fleet.get("availability", 0.0) < 1.0:
                problems.append(
                    f"{label}: faultless fleet availability "
                    f"{fleet.get('availability', 0.0):.4f} < 1.0"
                )
            continue
        avail = fleet.get("availability", 0.0)
        avail_floor = (drill or {}).get("min_availability", 0.0)
        if avail < avail_floor:
            problems.append(
                f"{label}: availability {avail:.4f} below drill floor "
                f"{avail_floor:.4f}"
            )
        drilled_shard = (drill or {}).get("shard", 0)
        shard_cells = {
            s.get("shard"): s for s in sim.get("shards", [])
            if "error" not in s
        }
        drilled = shard_cells.get(drilled_shard, {}).get("sim", {})
        if drilled.get("episodes", {}).get("count", 0) < 1:
            problems.append(
                f"{label}: drilled shard {drilled_shard} recorded no "
                f"degraded episodes"
            )
        det = drilled.get("detection")
        if det is None:
            problems.append(
                f"{label}: drilled shard {drilled_shard} has no detection "
                f"block"
            )
        elif det["tamper_detected"] < det["tamper_injected"]:
            problems.append(
                f"{label}: tamper detection gap "
                f"({det['tamper_detected']}/{det['tamper_injected']})"
            )
    for blocks, by_shards in sorted(rows.items()):
        if 1 not in by_shards or 4 not in by_shards:
            continue
        s1, s4 = by_shards[1], by_shards[4]
        if s4 <= 0:
            problems.append(
                f"blocks={blocks}: shards=4 ns_per_request is {s4}"
            )
            continue
        speedup = s1 / s4
        if speedup < floor:
            problems.append(
                f"blocks={blocks}: shards=4 speedup {speedup:.2f}x below "
                f"the {floor:.2f}x gate (s1 {s1:.1f} ns/req, "
                f"s4 {s4:.1f} ns/req)"
            )
    return problems


__all__ = [
    "IMBALANCE_MARGIN",
    "ScalingCell",
    "ScalingConfig",
    "full_config",
    "memory_block",
    "run_scaling",
    "scaling_check",
    "smoke_config",
]
