"""The ``BENCH_serve.json`` report format.

Plain validation code, no third-party schema libraries (same rule as
:mod:`repro.perf.schema`). Top-level document::

    {
      "kind": "repro-serve-report",
      "schema_version": 1,
      "config":      { scheme/levels/seed/policies/max_batch,
                       "workloads": [ workload dicts ], "smoke": bool },
      "environment": { "python": ..., "numpy": ..., "platform": ... },
      "cells":       [ { cell }, ... ]
    }

One cell per (workload, policy) pair::

    {
      "workload": "zipf-bursty", "policy": "batch",
      "wall_s": 1.2,                  # host-dependent
      "requests_per_s_wall": 1630.0,  # host-dependent
      "wall_latency_us": {"p50": ..., "p99": ..., "p999": ...},  # host-dep.
      "sim": {                        # deterministic for a code version
        "requests": ..., "accesses_issued": ..., "dedup_hits": ...,
        "coalesced_puts": ..., "absent_gets": ...,
        "accesses_per_request": ...,
        "ops": {"get": ..., "put": ..., "delete": ...},
        "batch_size_hist": [[size, count], ...],
        "sim_ns": ..., "requests_per_s_sim": ...,
        "latency_ns": {"p50","p99","p999","mean","max"},
        "queue_ns":   { same },
        "service_ns": { same },
        "security": {"guesses","success_rate","expected_rate","advantage"}
      }
    }

The ``sim`` block is a pure function of the config (seeded workload
generation, seeded ORAM, event-based DRAM timing), so CI asserts it is
byte-identical across runs and worker counts; ``wall_*`` fields are
the only host-dependent numbers, and :func:`deterministic_view` strips
exactly those (plus ``environment``) for the identity check.

Error cells mirror the perf schema::

    { "workload": "...", "policy": "...", "error": "<traceback>" }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

SCHEMA_VERSION = 1
REPORT_KIND = "repro-serve-report"
CHAOS_REPORT_KIND = "repro-chaos-report"
SCALING_REPORT_KIND = "repro-scaling-report"

_CONFIG_FIELDS = {
    "scheme": str,
    "levels": int,
    "seed": int,
    "max_batch": int,
    "policies": list,
    "workloads": list,
    "smoke": bool,
}

_CELL_FIELDS = {
    "workload": str,
    "policy": str,
    "wall_s": (int, float),
    "requests_per_s_wall": (int, float),
    "wall_latency_us": dict,
    "sim": dict,
}

_ERROR_CELL_FIELDS = {
    "workload": str,
    "policy": str,
    "error": str,
}

_SIM_FIELDS = {
    "requests": int,
    "accesses_issued": int,
    "dedup_hits": int,
    "coalesced_puts": int,
    "absent_gets": int,
    "accesses_per_request": (int, float),
    "ops": dict,
    "batch_size_hist": list,
    "sim_ns": (int, float),
    "requests_per_s_sim": (int, float),
    "latency_ns": dict,
    "queue_ns": dict,
    "service_ns": dict,
}

_PCTL_FIELDS = ("p50", "p99", "p999")

#: Host-dependent per-cell fields, stripped by :func:`deterministic_view`.
HOST_DEPENDENT_CELL_FIELDS = ("wall_s", "requests_per_s_wall",
                              "wall_latency_us")


def _check_fields(
    obj: Dict[str, Any], fields: Dict[str, Any], where: str, errors: List[str]
) -> None:
    for name, typ in fields.items():
        if name not in obj:
            errors.append(f"{where}: missing field {name!r}")
            continue
        val = obj[name]
        if typ is bool:
            ok = isinstance(val, bool)
        elif isinstance(val, bool):
            ok = False
        else:
            ok = isinstance(val, typ)
        if not ok:
            errors.append(
                f"{where}: field {name!r} has type "
                f"{type(val).__name__}, expected {typ}"
            )


def _check_percentiles(
    obj: Any, where: str, errors: List[str]
) -> None:
    if not isinstance(obj, dict):
        errors.append(f"{where}: must be an object")
        return
    for name in _PCTL_FIELDS:
        val = obj.get(name)
        if not isinstance(val, (int, float)) or isinstance(val, bool):
            errors.append(f"{where}: missing numeric {name!r}")
        elif val < 0:
            errors.append(f"{where}: {name} is negative ({val})")


def validate_report(doc: Any) -> List[str]:
    """Validate a parsed report; returns a list of problems (empty = ok)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"report root is {type(doc).__name__}, expected object"]
    if doc.get("kind") != REPORT_KIND:
        errors.append(f"kind is {doc.get('kind')!r}, expected {REPORT_KIND!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config: missing or not an object")
    else:
        _check_fields(config, _CONFIG_FIELDS, "config", errors)
    if not isinstance(doc.get("environment"), dict):
        errors.append("environment: missing or not an object")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells: missing, not a list, or empty")
        return errors
    seen = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: not an object")
            continue
        if "error" in cell:
            _check_fields(cell, _ERROR_CELL_FIELDS, where, errors)
        else:
            _check_fields(cell, _CELL_FIELDS, where, errors)
            sim = cell.get("sim")
            if isinstance(sim, dict):
                _check_fields(sim, _SIM_FIELDS, f"{where}.sim", errors)
                for name in ("latency_ns", "queue_ns", "service_ns"):
                    _check_percentiles(
                        sim.get(name), f"{where}.sim.{name}", errors
                    )
            wall = cell.get("wall_s")
            if isinstance(wall, (int, float)) and wall <= 0:
                errors.append(f"{where}: wall_s must be positive, got {wall}")
        key = (cell.get("workload"), cell.get("policy"))
        if key in seen:
            errors.append(f"{where}: duplicate cell {key}")
        seen.add(key)
    return errors


_CHAOS_CONFIG_FIELDS = {
    "scheme": str,
    "levels": int,
    "seed": int,
    "max_batch": int,
    "robustness": dict,
    "cells": list,
    "smoke": bool,
}

_CHAOS_CELL_FIELDS = {
    "name": str,
    "wall_s": (int, float),
    "requests_per_s_wall": (int, float),
    "sim": dict,
}

_CHAOS_ERROR_CELL_FIELDS = {
    "name": str,
    "error": str,
}

_CHAOS_SIM_FIELDS = {
    "requests": int,
    "completions": int,
    "status": dict,
    "availability": (int, float),
    "accesses_issued": int,
    "dedup_hits": int,
    "coalesced_puts": int,
    "absent_gets": int,
    "scheduler_timeouts": int,
    "degraded_reads": int,
    "journal": dict,
    "retries": int,
    "episodes": dict,
    "sim_ns": (int, float),
    "requests_per_s_sim": (int, float),
    "latency_ns": dict,
    "robust": dict,
}

#: Completion statuses every chaos ``sim.status`` block must carry.
_CHAOS_STATUSES = ("ok", "timed_out", "shed", "failed")


def validate_chaos_report(doc: Any) -> List[str]:
    """Validate a parsed chaos report; returns problems (empty = ok).

    Beyond field shapes, checks the campaign's accounting closes:
    every generated request completed with exactly one terminal status
    (``completions == requests`` and the status counts sum to it), and
    availability lies in [0, 1].
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"report root is {type(doc).__name__}, expected object"]
    if doc.get("kind") != CHAOS_REPORT_KIND:
        errors.append(
            f"kind is {doc.get('kind')!r}, expected {CHAOS_REPORT_KIND!r}"
        )
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config: missing or not an object")
    else:
        _check_fields(config, _CHAOS_CONFIG_FIELDS, "config", errors)
    if not isinstance(doc.get("environment"), dict):
        errors.append("environment: missing or not an object")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells: missing, not a list, or empty")
        return errors
    seen = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: not an object")
            continue
        if "error" in cell:
            _check_fields(cell, _CHAOS_ERROR_CELL_FIELDS, where, errors)
        else:
            _check_fields(cell, _CHAOS_CELL_FIELDS, where, errors)
            sim = cell.get("sim")
            if isinstance(sim, dict):
                _check_fields(sim, _CHAOS_SIM_FIELDS, f"{where}.sim", errors)
                _check_percentiles(
                    sim.get("latency_ns"), f"{where}.sim.latency_ns", errors
                )
                status = sim.get("status")
                if isinstance(status, dict):
                    for s in _CHAOS_STATUSES:
                        if not isinstance(status.get(s), int):
                            errors.append(
                                f"{where}.sim.status: missing count {s!r}"
                            )
                    if (
                        isinstance(sim.get("requests"), int)
                        and isinstance(sim.get("completions"), int)
                    ):
                        total = sum(
                            v for v in status.values() if isinstance(v, int)
                        )
                        if sim["completions"] != sim["requests"]:
                            errors.append(
                                f"{where}.sim: {sim['completions']} "
                                f"completions for {sim['requests']} requests"
                            )
                        if total != sim["completions"]:
                            errors.append(
                                f"{where}.sim.status: counts sum to {total}, "
                                f"expected {sim['completions']}"
                            )
                avail = sim.get("availability")
                if (
                    isinstance(avail, (int, float))
                    and not isinstance(avail, bool)
                    and not 0.0 <= avail <= 1.0
                ):
                    errors.append(
                        f"{where}.sim: availability {avail} outside [0, 1]"
                    )
            wall = cell.get("wall_s")
            if isinstance(wall, (int, float)) and wall <= 0:
                errors.append(f"{where}: wall_s must be positive, got {wall}")
        name = cell.get("name")
        if name in seen:
            errors.append(f"{where}: duplicate cell {name!r}")
        seen.add(name)
    return errors


_SCALING_CONFIG_FIELDS = {
    "scheme": str,
    "measured_levels": int,
    "seed": int,
    "max_batch": int,
    "policy": str,
    "min_speedup": (int, float),
    "heartbeat_ns": (int, float),
    "miss_after": int,
    "cells": list,
    "smoke": bool,
}

_SCALING_CELL_FIELDS = {
    "name": str,
    "shards": int,
    "total_blocks": int,
    "drill": bool,
    "wall_s": (int, float),
    "memory": dict,
    "sim": dict,
}

_SCALING_ERROR_CELL_FIELDS = {
    "name": str,
    "shards": int,
    "error": str,
}

_SCALING_MEMORY_FIELDS = {
    "per_shard_capacity": int,
    "shard_levels": int,
    "per_shard_bytes": int,
    "fleet_bytes": int,
    "single_tree_levels": int,
    "single_tree_bytes": int,
}

_SCALING_FLEET_FIELDS = {
    "requests": int,
    "completions": int,
    "status": dict,
    "availability": (int, float),
    "makespan_ns": (int, float),
    "ns_per_request": (int, float),
    "requests_per_s_sim": (int, float),
    "latency_ns": dict,
}


def validate_scaling_report(doc: Any) -> List[str]:
    """Validate a parsed scaling report; returns problems (empty = ok).

    Beyond field shapes: the per-shard detail blocks and the control
    summary must cover exactly ``shards`` entries, fleet availability
    must lie in [0, 1], and the memory block's fleet total must equal
    shards times the per-shard bytes.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"report root is {type(doc).__name__}, expected object"]
    if doc.get("kind") != SCALING_REPORT_KIND:
        errors.append(
            f"kind is {doc.get('kind')!r}, expected {SCALING_REPORT_KIND!r}"
        )
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config: missing or not an object")
    else:
        _check_fields(config, _SCALING_CONFIG_FIELDS, "config", errors)
    if not isinstance(doc.get("environment"), dict):
        errors.append("environment: missing or not an object")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells: missing, not a list, or empty")
        return errors
    seen = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: not an object")
            continue
        if "error" in cell:
            _check_fields(cell, _SCALING_ERROR_CELL_FIELDS, where, errors)
        else:
            _check_fields(cell, _SCALING_CELL_FIELDS, where, errors)
            memory = cell.get("memory")
            if isinstance(memory, dict):
                _check_fields(
                    memory, _SCALING_MEMORY_FIELDS, f"{where}.memory", errors
                )
                if (
                    isinstance(memory.get("per_shard_bytes"), int)
                    and isinstance(memory.get("fleet_bytes"), int)
                    and isinstance(cell.get("shards"), int)
                    and memory["fleet_bytes"]
                    != memory["per_shard_bytes"] * cell["shards"]
                ):
                    errors.append(
                        f"{where}.memory: fleet_bytes is not "
                        f"shards * per_shard_bytes"
                    )
            sim = cell.get("sim")
            if isinstance(sim, dict):
                fleet = sim.get("fleet")
                if not isinstance(fleet, dict):
                    errors.append(f"{where}.sim.fleet: missing or not object")
                else:
                    _check_fields(
                        fleet, _SCALING_FLEET_FIELDS,
                        f"{where}.sim.fleet", errors,
                    )
                    _check_percentiles(
                        fleet.get("latency_ns"),
                        f"{where}.sim.fleet.latency_ns", errors,
                    )
                    avail = fleet.get("availability")
                    if (
                        isinstance(avail, (int, float))
                        and not isinstance(avail, bool)
                        and not 0.0 <= avail <= 1.0
                    ):
                        errors.append(
                            f"{where}.sim.fleet: availability {avail} "
                            f"outside [0, 1]"
                        )
                shards = sim.get("shards")
                if not isinstance(shards, list):
                    errors.append(f"{where}.sim.shards: missing or not list")
                elif (
                    isinstance(cell.get("shards"), int)
                    and len(shards) != cell["shards"]
                ):
                    errors.append(
                        f"{where}.sim.shards: {len(shards)} entries for "
                        f"{cell['shards']} shards"
                    )
                control = sim.get("control")
                if not isinstance(control, dict):
                    errors.append(f"{where}.sim.control: missing or not object")
                elif not isinstance(control.get("all_healthy"), bool):
                    errors.append(
                        f"{where}.sim.control: missing boolean all_healthy"
                    )
            wall = cell.get("wall_s")
            if isinstance(wall, (int, float)) and wall <= 0:
                errors.append(f"{where}: wall_s must be positive, got {wall}")
        key = (cell.get("name"), cell.get("shards"))
        if key in seen:
            errors.append(f"{where}: duplicate cell {key}")
        seen.add(key)
    return errors


def cell_key(cell: Dict[str, Any]) -> str:
    """Stable identity of one matrix cell."""
    return f"{cell['workload']}/{cell['policy']}"


def scaling_cell_key(cell: Dict[str, Any]) -> str:
    """Stable identity of one capacity-curve cell."""
    return f"{cell['name']}@s{cell['shards']}"


def chaos_cell_key(cell: Dict[str, Any]) -> str:
    """Stable identity of one chaos-campaign cell."""
    return cell["name"]


def deterministic_view(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus every host-dependent field.

    Two runs with the same config -- on any machine, at any worker
    count -- must produce identical views; CI serializes both with
    ``sort_keys`` and compares bytes.
    """
    cells = []
    for cell in doc.get("cells", []):
        cells.append({
            k: v for k, v in cell.items()
            if k not in HOST_DEPENDENT_CELL_FIELDS
        })
    return {
        "kind": doc.get("kind"),
        "schema_version": doc.get("schema_version"),
        "config": doc.get("config"),
        "cells": cells,
    }


def deterministic_bytes(doc: Dict[str, Any]) -> bytes:
    """Canonical serialization of :func:`deterministic_view`."""
    return json.dumps(
        deterministic_view(doc), sort_keys=True, indent=1,
    ).encode()
