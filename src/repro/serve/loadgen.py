"""Open-loop load generation: arrivals, key popularity, op mixes.

Everything is derived from one ``numpy`` generator pinned on the
workload seed, so a workload is a pure function of its config -- the
same config always produces byte-identical request sequences, which is
what lets ``BENCH_serve.json`` commit deterministic fields.

**Arrivals** are open loop (they never wait for service):

- ``poisson`` -- i.i.d. exponential gaps at ``rate_rps`` (simulated
  requests per second, i.e. a mean gap of ``1e9 / rate_rps`` ns);
- ``bursty`` -- a two-state modulated Poisson process: exponential-length
  burst and idle phases, arriving at ``rate_rps * burst_factor``
  inside bursts and ``rate_rps * idle_factor`` outside. Bursts model
  flash crowds; they are what drives deep queues and fat batches.

**Key popularity** is a bounded zipf over a key *universe* of
``n_keys`` ranks (vectorized inverse-CDF sampling, so universes of
millions of keys cost one cumsum). The store can hold at most
``stored_keys`` values (ORAM capacity bounds it), so ranks fold onto
the stored set by ``rank % stored_keys``: the hot head maps
one-to-one, the cold tail folds uniformly, and the skew the scheduler
cares about survives intact.

**Values** are deterministic functions of (key, rid): sizes vary
around ``value_bytes`` so chains span one or more chunks, and the
bytes embed both key and rid so tests can verify every client received
exactly the value per-key FIFO semantics dictate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List

import numpy as np

from repro.serve.request import DELETE, GET, PUT, Request

ARRIVALS = ("poisson", "bursty")


@dataclass(frozen=True)
class WorkloadConfig:
    """One generated workload (a report ``config.workloads[]`` entry)."""

    name: str
    n_requests: int = 1000
    #: Key-universe size for the zipf popularity ranking; may be far
    #: larger than what the store holds (ranks fold onto stored keys).
    n_keys: int = 100_000
    #: Keys actually materialized in the store before serving.
    stored_keys: int = 800
    arrival: str = "poisson"
    #: Mean offered load, simulated requests per second.
    rate_rps: float = 1_200_000.0
    burst_factor: float = 5.0
    idle_factor: float = 0.25
    #: Mean burst / idle phase lengths (simulated ns).
    burst_ns: float = 50_000.0
    idle_ns: float = 200_000.0
    zipf_s: float = 0.99
    read_fraction: float = 0.85
    delete_fraction: float = 0.0
    value_bytes: int = 80
    seed: int = 0
    #: Cells where the batch policy is expected to *strictly* beat
    #: FIFO on accesses (used by the CI dedup gate).
    expect_dedup: bool = True

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival {self.arrival!r} (expected {ARRIVALS})"
            )
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if not 0 < self.stored_keys <= self.n_keys:
            raise ValueError("need 0 < stored_keys <= n_keys")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.delete_fraction <= 1.0 - self.read_fraction:
            raise ValueError(
                "delete_fraction must fit in the non-read remainder"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "n_requests": self.n_requests,
            "n_keys": self.n_keys,
            "stored_keys": self.stored_keys,
            "arrival": self.arrival,
            "rate_rps": self.rate_rps,
            "burst_factor": self.burst_factor,
            "idle_factor": self.idle_factor,
            "burst_ns": self.burst_ns,
            "idle_ns": self.idle_ns,
            "zipf_s": self.zipf_s,
            "read_fraction": self.read_fraction,
            "delete_fraction": self.delete_fraction,
            "value_bytes": self.value_bytes,
            "seed": self.seed,
            "expect_dedup": self.expect_dedup,
        }


def with_seed(cfg: WorkloadConfig, seed: int) -> WorkloadConfig:
    """The same workload re-pinned on another seed."""
    return replace(cfg, seed=seed)


# ------------------------------------------------------------------ pieces

def key_name(key_id: int) -> bytes:
    """Stable byte name of one stored key."""
    return b"k%08d" % key_id


def value_for(key: bytes, rid: int, mean_bytes: int = 80) -> bytes:
    """Deterministic value of one put: size and bytes fixed by inputs.

    Sizes spread over ``[mean - mean//2, mean + mean//2]`` driven by a
    CRC of the key and the request id, so chains cover one or more
    chunks and re-puts exercise chain grow/shrink.
    """
    span = max(1, mean_bytes)
    lo = max(1, span - span // 2)
    width = span // 2 * 2 + 1
    size = lo + (zlib.crc32(key) + 131 * rid) % width
    stamp = b"%s|%d|" % (key, rid)
    if len(stamp) >= size:
        return stamp[:size]
    reps = -(-(size - len(stamp)) // 16)
    return (stamp + b"0123456789abcdef" * reps)[:size]


def _arrival_times(cfg: WorkloadConfig, rng: np.random.Generator) -> np.ndarray:
    n = cfg.n_requests
    mean_gap = 1e9 / cfg.rate_rps
    if cfg.arrival == "poisson":
        return np.cumsum(rng.exponential(mean_gap, size=n))
    # Bursty: walk exponential burst/idle phases, drawing Poisson
    # arrivals at the phase's rate until n requests are placed.
    out = np.empty(n, dtype=np.float64)
    filled = 0
    t = 0.0
    in_burst = True
    while filled < n:
        phase_len = float(rng.exponential(
            cfg.burst_ns if in_burst else cfg.idle_ns
        ))
        factor = cfg.burst_factor if in_burst else cfg.idle_factor
        gap = mean_gap / factor if factor > 0 else None
        if gap is not None:
            # Expected arrivals this phase, padded; unused draws are
            # discarded (the generator stays deterministic because the
            # draw count is itself a deterministic function of draws).
            expect = max(8, int(phase_len / gap * 2))
            gaps = rng.exponential(gap, size=expect)
            times = np.cumsum(gaps)
            times = times[times < phase_len]
            take = min(len(times), n - filled)
            out[filled:filled + take] = t + times[:take]
            filled += take
        t += phase_len
        in_burst = not in_burst
    return out


def _zipf_ranks(
    n_keys: int, s: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Bounded zipf(s) ranks in [0, n_keys) via inverse-CDF sampling."""
    if s <= 0:
        return rng.integers(0, n_keys, size=n)
    weights = 1.0 / np.power(np.arange(1, n_keys + 1, dtype=np.float64), s)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(n)
    return np.searchsorted(cdf, u, side="left")


# ----------------------------------------------------------------- driver

def initial_items(cfg: WorkloadConfig) -> List[tuple]:
    """The (key, value) pairs preloaded into the store before serving."""
    return [
        (key_name(i), value_for(key_name(i), -1, cfg.value_bytes))
        for i in range(cfg.stored_keys)
    ]


def generate_requests(cfg: WorkloadConfig) -> List[Request]:
    """Generate the workload's full request sequence, arrival-ordered."""
    rng = np.random.default_rng(
        np.random.SeedSequence([0x5EE7, cfg.seed, cfg.n_requests])
    )
    n = cfg.n_requests
    arrivals = _arrival_times(cfg, rng)
    ranks = _zipf_ranks(cfg.n_keys, cfg.zipf_s, n, rng)
    key_ids = ranks % cfg.stored_keys
    op_draw = rng.random(n)
    requests: List[Request] = []
    write_cut = cfg.read_fraction + (
        1.0 - cfg.read_fraction - cfg.delete_fraction
    )
    for rid in range(n):
        key = key_name(int(key_ids[rid]))
        u = op_draw[rid]
        if u < cfg.read_fraction:
            op, value = GET, None
        elif u < write_cut:
            op, value = PUT, value_for(key, rid, cfg.value_bytes)
        else:
            op, value = DELETE, None
        requests.append(Request(
            rid=rid, op=op, key=key, value=value,
            arrival_ns=float(arrivals[rid]),
        ))
    return requests
