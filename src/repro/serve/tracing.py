"""Per-request Perfetto traces: queueing vs. ORAM vs. DRAM time.

Extends the PR-5 op-span export with request-level tracks. The
resulting Chrome trace-event document has:

* **tid 0** (``oram-ops``): one span per protocol operation
  (``readPath`` / ``evictPath`` / ``earlyReshuffle``) from
  :class:`~repro.telemetry.spans.TracingSink` -- where the DRAM time
  actually goes.
* **tid 1..N** (``requests-k``): per-request lanes. Each request
  contributes a ``queue`` span (cat ``serve.queue``, arrival to
  admission) and a service span named after its op (cat
  ``serve.oram``, admission to completion). Overlapping requests land
  on different lanes via greedy interval coloring, so the trace
  renders without broken nesting; a flash crowd shows up visually as
  a tall stack of busy lanes with long ``queue`` spans.

All timestamps are simulated DRAM nanoseconds, so the trace is
byte-stable across machines. Every span event carries exact
``args.start_ns``/``args.dur_ns`` and validates under
``tools/check_trace.py``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.request import Completion
from repro.telemetry.spans import Span, trace_event_doc

#: Event categories for the request-level spans.
CAT_QUEUE = "serve.queue"
CAT_SERVICE = "serve.oram"
#: Category for the chaos-campaign resilience track (degraded-mode
#: windows, fault-injection markers, shed/timeout/failed instants).
CAT_RESILIENCE = "serve.resilience"


def assign_lanes(completions: Sequence[Completion]) -> Dict[int, int]:
    """Greedy interval coloring: rid -> lane with no intra-lane overlap.

    Requests are laid down in arrival order; each takes the first lane
    whose previous occupant finished by this request's arrival. The
    lane count equals the maximum number of simultaneously in-flight
    requests -- itself a useful visual of queue depth.
    """
    lane_ends: List[float] = []
    lanes: Dict[int, int] = {}
    for comp in sorted(completions, key=lambda c: (c.arrival_ns, c.rid)):
        for lane, end in enumerate(lane_ends):
            if end <= comp.arrival_ns:
                lane_ends[lane] = comp.done_ns
                lanes[comp.rid] = lane
                break
        else:
            lanes[comp.rid] = len(lane_ends)
            lane_ends.append(comp.done_ns)
    return lanes


def _x_event(
    name: str, cat: str, tid: int,
    start_ns: float, dur_ns: float, args: Dict[str, Any],
) -> Dict[str, Any]:
    full_args = {"start_ns": start_ns, "dur_ns": dur_ns}
    full_args.update(args)
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "pid": 0,
        "tid": tid,
        "ts": start_ns / 1000.0,
        "dur": dur_ns / 1000.0,
        "args": full_args,
    }


def _instant_event(
    name: str, tid: int, ts_ns: float, args: Dict[str, Any],
) -> Dict[str, Any]:
    return {
        "name": name,
        "cat": CAT_RESILIENCE,
        "ph": "i",
        "s": "t",
        "pid": 0,
        "tid": tid,
        "ts": ts_ns / 1000.0,
        "args": args,
    }


def resilience_track_events(
    events: Sequence[Dict[str, Any]], tid: int,
) -> List[Dict[str, Any]]:
    """Render resilience-loop events onto one timeline track.

    Degraded-mode windows become ``X`` spans (paired ``degraded_exit``
    events carry their ``enter_ns``); everything else -- fault
    injections, sheds, timeouts, fails -- becomes an instant marker at
    its simulated timestamp.
    """
    out: List[Dict[str, Any]] = []
    for ev in events:
        kind = ev["kind"]
        if kind == "degraded_exit":
            args = {
                k: v for k, v in ev.items() if k not in ("kind", "ns")
            }
            out.append(_x_event(
                "degraded", CAT_RESILIENCE, tid,
                ev["enter_ns"], ev["ns"] - ev["enter_ns"], args,
            ))
        elif kind == "degraded_enter":
            # Rendered as the paired exit's span; an unpaired enter
            # (run ended degraded) still gets a marker.
            out.append(_instant_event("degraded_enter", tid, ev["ns"], {
                "quarantined": ev.get("quarantined", 0),
            }))
        else:
            args = {
                k: v for k, v in ev.items() if k not in ("kind", "ns")
            }
            out.append(_instant_event(kind, tid, ev["ns"], args))
    return out


def request_trace_doc(
    completions: Sequence[Completion],
    spans: Sequence[Span],
    meta: Optional[Dict[str, Any]] = None,
    resilience_events: Optional[Sequence[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Combine op spans and per-request spans into one trace document.

    ``resilience_events`` (from
    :class:`~repro.serve.resilience.ChaosReplayResult`) adds one more
    track carrying degraded-mode windows and fault/shed/timeout
    markers, so the chaos timeline shows *when* serving degraded
    alongside *what* each request experienced.
    """
    lanes = assign_lanes(completions)
    n_lanes = max(lanes.values(), default=-1) + 1
    track_names = {0: "oram-ops"}
    for k in range(n_lanes):
        track_names[k + 1] = f"requests-{k}"
    extra: List[Dict[str, Any]] = []
    for comp in completions:
        tid = lanes[comp.rid] + 1
        args = {
            "rid": comp.rid,
            "op": comp.op,
            "key": comp.key.decode("latin-1"),
            "ok": comp.ok,
            "accesses": comp.accesses,
            "dedup": comp.dedup,
            "coalesced": comp.coalesced,
        }
        if comp.status != "ok":
            args["status"] = comp.status
        if comp.degraded:
            args["degraded"] = True
        if comp.queue_ns > 0:
            extra.append(_x_event(
                "queue", CAT_QUEUE, tid,
                comp.arrival_ns, comp.queue_ns, args,
            ))
        extra.append(_x_event(
            comp.op, CAT_SERVICE, tid,
            comp.start_ns, comp.service_ns, args,
        ))
    if resilience_events:
        tid = n_lanes + 1
        track_names[tid] = "resilience"
        extra.extend(resilience_track_events(resilience_events, tid))
    return trace_event_doc(
        spans, meta=meta, extra_events=extra, track_names=track_names,
    )


def write_trace(doc: Dict[str, Any], path: str) -> str:
    """Write a trace document as JSON, creating parent dirs."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    return path


__all__ = [
    "CAT_QUEUE",
    "CAT_RESILIENCE",
    "CAT_SERVICE",
    "assign_lanes",
    "request_trace_doc",
    "resilience_track_events",
    "write_trace",
]
