"""Per-request Perfetto traces: queueing vs. ORAM vs. DRAM time.

Extends the PR-5 op-span export with request-level tracks. The
resulting Chrome trace-event document has:

* **tid 0** (``oram-ops``): one span per protocol operation
  (``readPath`` / ``evictPath`` / ``earlyReshuffle``) from
  :class:`~repro.telemetry.spans.TracingSink` -- where the DRAM time
  actually goes.
* **tid 1..N** (``requests-k``): per-request lanes. Each request
  contributes a ``queue`` span (cat ``serve.queue``, arrival to
  admission) and a service span named after its op (cat
  ``serve.oram``, admission to completion). Overlapping requests land
  on different lanes via greedy interval coloring, so the trace
  renders without broken nesting; a flash crowd shows up visually as
  a tall stack of busy lanes with long ``queue`` spans.

All timestamps are simulated DRAM nanoseconds, so the trace is
byte-stable across machines. Every span event carries exact
``args.start_ns``/``args.dur_ns`` and validates under
``tools/check_trace.py``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.request import Completion
from repro.telemetry.spans import Span, trace_event_doc

#: Event categories for the request-level spans.
CAT_QUEUE = "serve.queue"
CAT_SERVICE = "serve.oram"


def assign_lanes(completions: Sequence[Completion]) -> Dict[int, int]:
    """Greedy interval coloring: rid -> lane with no intra-lane overlap.

    Requests are laid down in arrival order; each takes the first lane
    whose previous occupant finished by this request's arrival. The
    lane count equals the maximum number of simultaneously in-flight
    requests -- itself a useful visual of queue depth.
    """
    lane_ends: List[float] = []
    lanes: Dict[int, int] = {}
    for comp in sorted(completions, key=lambda c: (c.arrival_ns, c.rid)):
        for lane, end in enumerate(lane_ends):
            if end <= comp.arrival_ns:
                lane_ends[lane] = comp.done_ns
                lanes[comp.rid] = lane
                break
        else:
            lanes[comp.rid] = len(lane_ends)
            lane_ends.append(comp.done_ns)
    return lanes


def _x_event(
    name: str, cat: str, tid: int,
    start_ns: float, dur_ns: float, args: Dict[str, Any],
) -> Dict[str, Any]:
    full_args = {"start_ns": start_ns, "dur_ns": dur_ns}
    full_args.update(args)
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "pid": 0,
        "tid": tid,
        "ts": start_ns / 1000.0,
        "dur": dur_ns / 1000.0,
        "args": full_args,
    }


def request_trace_doc(
    completions: Sequence[Completion],
    spans: Sequence[Span],
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Combine op spans and per-request spans into one trace document."""
    lanes = assign_lanes(completions)
    n_lanes = max(lanes.values(), default=-1) + 1
    track_names = {0: "oram-ops"}
    for k in range(n_lanes):
        track_names[k + 1] = f"requests-{k}"
    extra: List[Dict[str, Any]] = []
    for comp in completions:
        tid = lanes[comp.rid] + 1
        args = {
            "rid": comp.rid,
            "op": comp.op,
            "key": comp.key.decode("latin-1"),
            "ok": comp.ok,
            "accesses": comp.accesses,
            "dedup": comp.dedup,
            "coalesced": comp.coalesced,
        }
        if comp.queue_ns > 0:
            extra.append(_x_event(
                "queue", CAT_QUEUE, tid,
                comp.arrival_ns, comp.queue_ns, args,
            ))
        extra.append(_x_event(
            comp.op, CAT_SERVICE, tid,
            comp.start_ns, comp.service_ns, args,
        ))
    return trace_event_doc(
        spans, meta=meta, extra_events=extra, track_names=track_names,
    )


def write_trace(doc: Dict[str, Any], path: str) -> str:
    """Write a trace document as JSON, creating parent dirs."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    return path


__all__ = [
    "CAT_QUEUE",
    "CAT_SERVICE",
    "assign_lanes",
    "request_trace_doc",
    "write_trace",
]
