"""The batching request scheduler over one :class:`ObliviousKV`.

The ORAM admits exactly one oblivious access at a time, so concurrency
cannot come from overlapping accesses -- it comes from *scheduling*.
The scheduler takes a batch of queued requests and:

- **groups** them by key (every chunk of a key's value chain lives in
  the same chain, so key granularity is block granularity);
- **reorders** the groups into a seed-deterministic order (a keyed
  digest of the key bytes), so the served order depends only on the
  batch's *contents*, never on client submission order;
- **dedups** same-key reads: the first get performs the chain's
  oblivious accesses -- after which the chain's blocks are
  stash-resident -- and every other same-key waiter in the batch is
  answered from that single access;
- **coalesces** superseded writes: a put directly followed (within the
  batch, on the same key, with no intervening get) by another write is
  acknowledged without touching the ORAM -- its bytes could never have
  been observed.

Correctness contract: *per-key FIFO*. Operations on one key take
effect in arrival order, so every client receives exactly the value a
serial replay would have produced; only operations on different keys
are reordered. The ORAM-level trace stays indistinguishable -- every
issued access is an ordinary oblivious access, and skipping an access
reveals nothing the (encrypted, padded) chain did not already mask.

The ``"fifo"`` policy is the naive baseline: strict arrival order, one
request at a time, no dedup or coalescing. The benchmark report pits
it against ``"batch"`` to quantify the scheduler's access savings.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.app.kvstore import ObliviousKV
from repro.serve.request import (
    DELETE, GET, PUT, TIMED_OUT, Completion, Request,
)

POLICIES = ("fifo", "batch")

#: Sentinel distinguishing "no cached answer yet" from "cached absent".
_UNSET = object()


class BatchScheduler:
    """Serve batches of requests over one KV store, one access at a time."""

    def __init__(
        self,
        kv: ObliviousKV,
        policy: str = "batch",
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r} (expected {POLICIES})")
        self.kv = kv
        self.policy = policy
        self.seed = seed
        #: The service clock (ns). Replay passes the DRAM-model clock,
        #: the threaded server passes a wall clock; the scheduler only
        #: stamps, never advances.
        self.clock = clock if clock is not None else (lambda: 0.0)
        self._salt = hashlib.sha256(
            b"repro-serve-order|%d" % seed
        ).digest()
        # ------------------------------------------------ counters
        self.requests = 0
        self.batches = 0
        self.dedup_hits = 0
        self.coalesced_puts = 0
        self.absent_gets = 0
        self.timeouts = 0
        self.ops_served: Dict[str, int] = {GET: 0, PUT: 0, DELETE: 0}
        self.batch_size_hist: Dict[int, int] = {}
        self._accesses0 = kv.oram.online_accesses

    # ------------------------------------------------------------- metrics

    @property
    def accesses_issued(self) -> int:
        """Oblivious accesses issued on behalf of served requests."""
        return self.kv.oram.online_accesses - self._accesses0

    def stats(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "accesses_issued": self.accesses_issued,
            "dedup_hits": self.dedup_hits,
            "coalesced_puts": self.coalesced_puts,
            "absent_gets": self.absent_gets,
            "timeouts": self.timeouts,
            "ops": dict(self.ops_served),
            "batch_size_hist": [
                [size, count]
                for size, count in sorted(self.batch_size_hist.items())
            ],
        }

    # ------------------------------------------------------------ ordering

    def order_key(self, key: bytes) -> bytes:
        """Seed-keyed digest ordering key groups within a batch.

        Deterministic for a (seed, key) pair and independent of client
        submission order, so a shuffled batch serves identically to a
        sorted one.
        """
        return hashlib.sha256(self._salt + key).digest()

    # ------------------------------------------------------------- serving

    def serve_batch(self, batch: Sequence[Request]) -> List[Completion]:
        """Serve one admitted batch; returns completions in served order."""
        if not batch:
            return []
        self.batches += 1
        size = len(batch)
        self.batch_size_hist[size] = self.batch_size_hist.get(size, 0) + 1
        self.requests += size
        for req in batch:
            self.ops_served[req.op] += 1
        out: List[Completion] = []
        if self.policy == "fifo":
            for req in batch:
                self._execute(req, out)
            return out
        # Group by key; each group serves in arrival order (per-key
        # FIFO holds even if the submission queue was out of order).
        groups: Dict[bytes, List[Request]] = {}
        for req in batch:
            groups.setdefault(req.key, []).append(req)
        for key in sorted(groups, key=self.order_key):
            reqs = groups[key]
            reqs.sort(key=lambda r: (r.arrival_ns, r.rid))
            self._serve_group(reqs, out)
        return out

    # ------------------------------------------------------- deadlines

    def _expired(self, req: Request) -> bool:
        """True when ``req``'s deadline passed before service started.

        Checked immediately before the scheduler would begin the
        request's work: a request that expires mid-operation still
        completes (the access is already in flight and paid for), but
        one whose deadline passed while it queued is refused -- the
        open-loop client it models has already given up.
        """
        return req.deadline_ns is not None and self.clock() >= req.deadline_ns

    def _timeout(self, req: Request, out: List[Completion]) -> None:
        self.timeouts += 1
        now = self.clock()
        out.append(Completion(
            rid=req.rid, op=req.op, key=req.key, value=None, ok=False,
            arrival_ns=req.arrival_ns, start_ns=now, done_ns=now,
            accesses=0, status=TIMED_OUT,
        ))

    # ------------------------------------------------------- naive execute

    def _execute(self, req: Request, out: List[Completion]) -> None:
        """Serve one request with its own oblivious accesses (FIFO path)."""
        if self._expired(req):
            self._timeout(req, out)
            return
        kv = self.kv
        t0 = self.clock()
        a0 = kv.oram.online_accesses
        w0 = time.perf_counter()
        if req.op == GET:
            value = kv.get(req.key)
            ok = value is not None
            if not ok:
                self.absent_gets += 1
        elif req.op == PUT:
            kv.put(req.key, req.value)
            value, ok = None, True
        else:
            value, ok = None, kv.delete(req.key)
        wall = time.perf_counter() - w0
        out.append(Completion(
            rid=req.rid, op=req.op, key=req.key, value=value, ok=ok,
            arrival_ns=req.arrival_ns, start_ns=t0, done_ns=self.clock(),
            accesses=kv.oram.online_accesses - a0, wall_s=wall,
        ))

    # ------------------------------------------------------- batched group

    def _serve_group(self, reqs: List[Request], out: List[Completion]) -> None:
        """Serve one key's requests in arrival order, dedup + coalesce.

        A put is *superseded* when the next operation on the key within
        the batch is another write (put or delete) -- nothing can read
        the skipped bytes, so only the surviving write touches the
        ORAM. Superseded puts are acknowledged when that surviving
        write completes (durability is only real at that point).
        """
        n = len(reqs)
        superseded = [False] * n
        write_ahead = False
        for i in range(n - 1, -1, -1):
            op = reqs[i].op
            if op == GET:
                write_ahead = False
            else:
                if op == PUT and write_ahead:
                    superseded[i] = True
                write_ahead = True
        kv = self.kv
        clock = self.clock
        cached: Any = _UNSET
        cached_window = (0.0, 0.0, 0.0)   # (start_ns, done_ns, wall_s)
        deferred: List[Completion] = []
        for i, req in enumerate(reqs):
            if (
                not (req.op == PUT and superseded[i])
                and self._expired(req)
            ):
                # Deadline passed while queued. A superseded put is
                # exempt: it does no work of its own and inherits the
                # surviving write's outcome. If the *surviving* write
                # expires, the puts it subsumed never became durable
                # either -- fail their already-emitted completions and
                # forget the batch-local value: the store still holds
                # the pre-group state, so later gets must really fetch.
                self._timeout(req, out)
                if req.op != GET:
                    now = self.clock()
                    for d in deferred:
                        d.ok = False
                        d.status = TIMED_OUT
                        d.start_ns = d.done_ns = now
                        self.timeouts += 1
                    deferred.clear()
                    cached = _UNSET
                continue
            if req.op == GET:
                if cached is not _UNSET and cached is not None:
                    # Same-key waiter: the chain is already on-chip (its
                    # blocks sit in the stash after the shared access),
                    # so this client is served without a new access.
                    self.dedup_hits += 1
                    start, done, wall = cached_window
                    out.append(Completion(
                        rid=req.rid, op=GET, key=req.key, value=cached,
                        ok=True, arrival_ns=req.arrival_ns,
                        start_ns=start, done_ns=done,
                        accesses=0, dedup=True, wall_s=wall,
                    ))
                    continue
                t0 = clock()
                a0 = kv.oram.online_accesses
                w0 = time.perf_counter()
                value = kv.get(req.key)
                wall = time.perf_counter() - w0
                done = clock()
                if value is None:
                    self.absent_gets += 1
                cached = value
                cached_window = (t0, done, wall)
                out.append(Completion(
                    rid=req.rid, op=GET, key=req.key, value=value,
                    ok=value is not None, arrival_ns=req.arrival_ns,
                    start_ns=t0, done_ns=done,
                    accesses=kv.oram.online_accesses - a0, wall_s=wall,
                ))
            elif req.op == PUT:
                if superseded[i]:
                    self.coalesced_puts += 1
                    comp = Completion(
                        rid=req.rid, op=PUT, key=req.key, value=None,
                        ok=True, arrival_ns=req.arrival_ns,
                        start_ns=0.0, done_ns=0.0,
                        accesses=0, coalesced=True,
                    )
                    deferred.append(comp)
                    out.append(comp)
                    cached = req.value
                    continue
                t0 = clock()
                a0 = kv.oram.online_accesses
                w0 = time.perf_counter()
                kv.put(req.key, req.value)
                wall = time.perf_counter() - w0
                done = clock()
                cached = req.value
                cached_window = (t0, done, wall)
                comp = Completion(
                    rid=req.rid, op=PUT, key=req.key, value=None, ok=True,
                    arrival_ns=req.arrival_ns, start_ns=t0, done_ns=done,
                    accesses=kv.oram.online_accesses - a0, wall_s=wall,
                )
                out.append(comp)
                for d in deferred:
                    d.start_ns, d.done_ns, d.wall_s = t0, done, wall
                deferred.clear()
            else:   # DELETE
                t0 = clock()
                a0 = kv.oram.online_accesses
                w0 = time.perf_counter()
                existed = kv.delete(req.key)
                wall = time.perf_counter() - w0
                done = clock()
                if cached is not _UNSET:
                    # A coalesced put may exist only logically; report
                    # the per-key-FIFO truth, not the store's.
                    existed = cached is not None
                cached = None
                cached_window = (t0, done, wall)
                out.append(Completion(
                    rid=req.rid, op=DELETE, key=req.key, value=None,
                    ok=existed, arrival_ns=req.arrival_ns,
                    start_ns=t0, done_ns=done,
                    accesses=kv.oram.online_accesses - a0, wall_s=wall,
                ))
                for d in deferred:
                    d.start_ns, d.done_ns, d.wall_s = t0, done, wall
                deferred.clear()
        # Per-key FIFO guarantees deferred puts are always flushed: a
        # superseded put implies a later write in the same group.
        assert not deferred, "superseded put without a surviving write"
