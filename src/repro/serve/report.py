"""Human-readable rendering of serve reports."""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.report import render_mapping_table
from repro.serve.schema import cell_key


def render_report(doc: Dict[str, Any]) -> str:
    """Text table of one report's cells."""
    cfg = doc["config"]
    rows = []
    errored = []
    for cell in doc["cells"]:
        if "error" in cell:
            errored.append(cell)
            continue
        sim = cell["sim"]
        rows.append({
            "cell": cell_key(cell),
            "req_per_s_sim": sim["requests_per_s_sim"],
            "acc_per_req": sim["accesses_per_request"],
            "dedup": sim["dedup_hits"],
            "coalesced": sim["coalesced_puts"],
            "p50_us": sim["latency_ns"]["p50"] / 1000.0,
            "p99_us": sim["latency_ns"]["p99"] / 1000.0,
            "p999_us": sim["latency_ns"]["p999"] / 1000.0,
            "wall_s": cell["wall_s"],
        })
    flavor = "smoke" if cfg.get("smoke") else "full"
    title = (
        f"serve matrix ({flavor}): {cfg['scheme']} L={cfg['levels']} "
        f"max_batch={cfg['max_batch']} seed={cfg['seed']}"
    )
    lines = []
    if rows:
        lines.append(render_mapping_table(rows, title=title))
    else:
        lines.append(f"{title}\n(no completed cells)")
    for cell in errored:
        first = str(cell["error"]).strip().splitlines()
        lines.append(
            f"ERROR {cell_key(cell)}: {first[0] if first else 'cell failed'}"
        )
    return "\n".join(lines)
