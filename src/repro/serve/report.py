"""Human-readable rendering of serve reports."""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.report import render_mapping_table
from repro.serve.schema import cell_key, chaos_cell_key, scaling_cell_key


def render_scaling_report(doc: Dict[str, Any]) -> str:
    """Text table of one capacity curve's cells."""
    cfg = doc["config"]
    rows = []
    errored = []
    for cell in doc["cells"]:
        if "error" in cell:
            errored.append(cell)
            continue
        fleet = cell["sim"]["fleet"]
        memory = cell["memory"]
        rows.append({
            "cell": scaling_cell_key(cell),
            "blocks": cell["total_blocks"],
            "ns_per_req": fleet["ns_per_request"],
            "req_per_s_sim": fleet["requests_per_s_sim"],
            "avail": fleet["availability"],
            "p99_us": fleet["latency_ns"]["p99"] / 1000.0,
            "shard_MiB": memory["per_shard_bytes"] / 2 ** 20,
            "fleet_MiB": memory["fleet_bytes"] / 2 ** 20,
            "healthy": cell["sim"]["control"]["all_healthy"],
            "drill": cell["drill"],
        })
    flavor = "smoke" if cfg.get("smoke") else "full"
    title = (
        f"capacity curve ({flavor}): {cfg['scheme']} "
        f"measured L={cfg['measured_levels']} max_batch={cfg['max_batch']} "
        f"seed={cfg['seed']}"
    )
    lines = []
    if rows:
        lines.append(render_mapping_table(rows, title=title))
    else:
        lines.append(f"{title}\n(no completed cells)")
    for cell in errored:
        first = str(cell["error"]).strip().splitlines()
        lines.append(
            f"ERROR {scaling_cell_key(cell)}: "
            f"{first[0] if first else 'cell failed'}"
        )
    return "\n".join(lines)


def render_chaos_report(doc: Dict[str, Any]) -> str:
    """Text table of one chaos campaign's cells."""
    cfg = doc["config"]
    rows = []
    errored = []
    for cell in doc["cells"]:
        if "error" in cell:
            errored.append(cell)
            continue
        sim = cell["sim"]
        status = sim["status"]
        det = sim.get("detection")
        episodes = sim["episodes"]
        rows.append({
            "cell": chaos_cell_key(cell),
            "avail": sim["availability"],
            "p99_us": sim["latency_ns"]["p99"] / 1000.0,
            "shed": status["shed"],
            "timeout": status["timed_out"] + sim["scheduler_timeouts"],
            "failed": status["failed"],
            "degr_reads": sim["degraded_reads"],
            "episodes": episodes["count"],
            "recover_us": episodes["recover_ns_max"] / 1000.0,
            "detect": "-" if det is None else (
                f"{det['tamper_detected']}/{det['tamper_injected']}"
            ),
        })
    flavor = "smoke" if cfg.get("smoke") else "full"
    title = (
        f"chaos campaign ({flavor}): {cfg['scheme']} L={cfg['levels']} "
        f"max_batch={cfg['max_batch']} seed={cfg['seed']}"
    )
    lines = []
    if rows:
        lines.append(render_mapping_table(rows, title=title))
    else:
        lines.append(f"{title}\n(no completed cells)")
    for cell in errored:
        first = str(cell["error"]).strip().splitlines()
        lines.append(
            f"ERROR {chaos_cell_key(cell)}: "
            f"{first[0] if first else 'cell failed'}"
        )
    return "\n".join(lines)


def render_report(doc: Dict[str, Any]) -> str:
    """Text table of one report's cells."""
    cfg = doc["config"]
    rows = []
    errored = []
    for cell in doc["cells"]:
        if "error" in cell:
            errored.append(cell)
            continue
        sim = cell["sim"]
        rows.append({
            "cell": cell_key(cell),
            "req_per_s_sim": sim["requests_per_s_sim"],
            "acc_per_req": sim["accesses_per_request"],
            "dedup": sim["dedup_hits"],
            "coalesced": sim["coalesced_puts"],
            "p50_us": sim["latency_ns"]["p50"] / 1000.0,
            "p99_us": sim["latency_ns"]["p99"] / 1000.0,
            "p999_us": sim["latency_ns"]["p999"] / 1000.0,
            "wall_s": cell["wall_s"],
        })
    flavor = "smoke" if cfg.get("smoke") else "full"
    title = (
        f"serve matrix ({flavor}): {cfg['scheme']} L={cfg['levels']} "
        f"max_batch={cfg['max_batch']} seed={cfg['seed']}"
    )
    lines = []
    if rows:
        lines.append(render_mapping_table(rows, title=title))
    else:
        lines.append(f"{title}\n(no completed cells)")
    for cell in errored:
        first = str(cell["error"]).strip().splitlines()
        lines.append(
            f"ERROR {cell_key(cell)}: {first[0] if first else 'cell failed'}"
        )
    return "\n".join(lines)
