"""Chaos-hardened serving: deadlines, backpressure, degraded mode.

:func:`resilient_replay` is the fault-tolerant sibling of
:func:`repro.serve.replay.replay`: the same open-loop discrete-event
serving loop on the simulated DRAM clock, but built to keep answering
while a :class:`~repro.faults.memory.FaultyMemory` fires bit flips,
replays, dropped writes and outages underneath the store. Three
mechanisms, layered:

- **Deadlines + bounded retry.** Every request carries an absolute
  deadline (``arrival + deadline_ns``) on the simulated clock; a
  request still queued past it completes as ``TIMED_OUT``. Reads the
  degraded store cannot answer yet are retried with the exact
  exponential-backoff semantics of the ORAM-level recovery ladder
  (:class:`~repro.oram.recovery.RobustnessConfig`), lifted to request
  scope: attempt ``k`` waits ``backoff_base_ns * backoff_factor **
  (k-1)`` before re-admission, and a request out of budget completes
  as ``FAILED``.

- **Admission control.** The pending queue is bounded; past the limit
  the configured policy sheds load -- ``reject-new`` refuses the
  arriving request, ``drop-oldest`` evicts the head of the queue in
  its favor. Either way the victim completes as ``SHED``: an outage
  backlog degrades tail latency and availability, never memory.

- **Degraded mode.** When an access quarantines a bucket (persistent
  corruption detected by MAC/Merkle), the loop stops issuing oblivious
  accesses entirely -- the store is wounded and every further access
  risks compounding the damage -- and serves from what the client side
  already holds: reads are answered from the stash payload cache
  (:meth:`~repro.app.kvstore.ObliviousKV.resident_value`) and from the
  write journal; writes buffer into that bounded journal. After
  ``repair_ns`` of simulated repair time the quarantined buckets are
  rebuilt (:meth:`~repro.oram.ring.RingOram.flush_recovery`, charged
  on the same clock) and the journal replays through the batching
  scheduler -- one batch, so its dedup/coalescing machinery preserves
  the per-key FIFO contract across the whole episode.

Per-key FIFO under degradation deserves spelling out. A degraded read
is answered by the newest journaled write on its key that *arrived
before it*; failing that, by the stash-resident (pre-journal) value --
which is exactly the value a serial replay would have produced,
because every journaled write on that key arrived later. A read that
cannot be answered consistently is never served a wrong value: it
waits (bounded by its deadline and retry budget) until the rebuild
lands, and the journal replays *before* any retried read is served.
Failed operations (``TIMED_OUT``/``SHED``/``FAILED``) have no effect
on the store, so the contract quantifies over served operations --
every ``ok`` answer equals the serial-replay answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.oram.recovery import RobustnessConfig
from repro.serve.request import (
    DELETE, FAILED, GET, PUT, SHED, TIMED_OUT, Completion, Request,
)
from repro.serve.scheduler import BatchScheduler
from repro.serve.stack import ServedStack

SHED_POLICIES = ("reject-new", "drop-oldest")


@dataclass(frozen=True)
class ResilienceConfig:
    """Request-scope survival policy for one serving run.

    ``retry_budget`` / ``backoff_base_ns`` / ``backoff_factor`` carry
    the same meaning as their :class:`RobustnessConfig` namesakes, one
    level up: the ORAM ladder retries a slot open, this policy retries
    a *request*. ``deadline_ns`` and ``queue_limit`` of 0 disable the
    deadline and the queue bound respectively.
    """

    deadline_ns: float = 0.0
    queue_limit: int = 0
    shed_policy: str = "reject-new"
    retry_budget: int = 3
    backoff_base_ns: float = 30_000.0
    backoff_factor: float = 2.0
    journal_limit: int = 64
    #: Simulated repair window: degraded mode lasts this long before
    #: the quarantined buckets are rebuilt and the journal replays.
    repair_ns: float = 300_000.0

    def __post_init__(self) -> None:
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r} "
                f"(expected one of {SHED_POLICIES})"
            )
        if self.deadline_ns < 0:
            raise ValueError("deadline_ns must be >= 0")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.backoff_base_ns < 0:
            raise ValueError("backoff_base_ns must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.journal_limit < 0:
            raise ValueError("journal_limit must be >= 0")
        if self.repair_ns <= 0:
            raise ValueError("repair_ns must be positive")

    @classmethod
    def with_retry_policy(
        cls, policy: RobustnessConfig, **overrides: Any
    ) -> "ResilienceConfig":
        """Lift an ORAM-level retry policy to request scope."""
        base = {
            "retry_budget": policy.retry_budget,
            "backoff_base_ns": policy.backoff_base_ns,
            "backoff_factor": policy.backoff_factor,
        }
        base.update(overrides)
        return cls(**base)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "deadline_ns": self.deadline_ns,
            "queue_limit": self.queue_limit,
            "shed_policy": self.shed_policy,
            "retry_budget": self.retry_budget,
            "backoff_base_ns": self.backoff_base_ns,
            "backoff_factor": self.backoff_factor,
            "journal_limit": self.journal_limit,
            "repair_ns": self.repair_ns,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResilienceConfig":
        return cls(**data)


@dataclass
class ChaosReplayResult:
    """One resiliently-served workload."""

    completions: List[Completion]
    start_ns: float
    end_ns: float
    wall_s: float
    #: One entry per degraded episode: ``{"enter_ns", "exit_ns",
    #: "rebuilt", "journal_replayed"}`` (exit includes the rebuild and
    #: the journal replay, so ``exit - enter`` is time-to-recover).
    episodes: List[Dict[str, Any]] = field(default_factory=list)
    #: Timeline events for tracing: degraded windows, shed/timeout/
    #: failed instants, per-batch fault-injection deltas.
    events: List[Dict[str, Any]] = field(default_factory=list)
    degraded_reads: int = 0
    journal_appends: int = 0
    journal_replayed: int = 0
    journal_sheds: int = 0
    retries: int = 0

    @property
    def sim_ns(self) -> float:
        return self.end_ns - self.start_ns

    def status_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for c in self.completions:
            out[c.status] = out.get(c.status, 0) + 1
        return out


def _journal_view(
    journal: Sequence[Request], key: bytes, before: Tuple[float, int]
) -> Tuple[bool, Optional[bytes]]:
    """The newest journaled write on ``key`` older than ``before``.

    Returns ``(found, value)``; a found DELETE yields ``(True, None)``.
    """
    found, value = False, None
    for w in journal:
        if w.key != key:
            continue
        if (w.arrival_ns, w.rid) >= before:
            break
        found = True
        value = w.value if w.op == PUT else None
    return found, value


def resilient_replay(
    stack: ServedStack,
    requests: Sequence[Request],
    scheduler: BatchScheduler,
    rcfg: ResilienceConfig,
    max_batch: int = 32,
    sampler: Optional[Any] = None,
) -> ChaosReplayResult:
    """Serve ``requests`` open-loop, surviving injected faults.

    The loop owns rebuild scheduling: ``defer_rebuilds`` is switched on
    so a quarantine detected mid-batch holds until the repair window,
    during which the store serves degraded. Deterministic in (workload
    seed, stack seed, config) -- every decision runs off the simulated
    clock.

    ``sampler`` (an :class:`~repro.telemetry.console.OpsSampler`) is
    probed once per scheduling round with the live queue/journal state;
    it only reads, so attaching one changes nothing the loop decides.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    sink = stack.dram_sink
    kv = stack.kv
    oram = kv.oram
    oram.defer_rebuilds = True
    faulty = stack.faulty

    result = ChaosReplayResult(
        completions=[], start_ns=sink.now, end_ns=sink.now, wall_s=0.0,
    )
    completions = result.completions
    events = result.events
    queue: List[Request] = []
    #: rid -> (retries so far, earliest re-admission time).
    retry_meta: Dict[int, Tuple[int, float]] = {}
    journal: List[Request] = []
    degraded_since: Optional[float] = None
    repair_due = 0.0
    quarantined_at_enter = 0
    injected0 = dict(faulty.injected) if faulty is not None else {}

    def terminal(req: Request, status: str, ns: float) -> None:
        retry_meta.pop(req.rid, None)
        completions.append(Completion(
            rid=req.rid, op=req.op, key=req.key, value=None, ok=False,
            arrival_ns=req.arrival_ns, start_ns=ns, done_ns=ns,
            accesses=0, status=status,
        ))
        events.append({
            "kind": status, "ns": ns, "rid": req.rid, "op": req.op,
        })

    def serve_degraded_read(req: Request, now: float) -> bool:
        """Answer one read without an access; False = not answerable."""
        found, value = _journal_view(
            journal, req.key, (req.arrival_ns, req.rid)
        )
        if not found:
            resident, value = kv.resident_value(req.key)
            if not resident:
                return False
        ok = value is not None
        if not ok:
            scheduler.absent_gets += 1
        result.degraded_reads += 1
        completions.append(Completion(
            rid=req.rid, op=GET, key=req.key, value=value, ok=ok,
            arrival_ns=req.arrival_ns, start_ns=now, done_ns=now,
            accesses=0, degraded=True,
        ))
        return True

    def note_faults(now: float) -> None:
        """Emit a timeline event when the wrapper injected new faults."""
        if faulty is None:
            return
        delta = {
            k: faulty.injected[k] - injected0.get(k, 0)
            for k in faulty.injected
            if faulty.injected[k] != injected0.get(k, 0)
        }
        if delta:
            injected0.update(faulty.injected)
            events.append({"kind": "faults", "ns": now, "injected": delta})

    def enter_degraded(now: float) -> None:
        nonlocal degraded_since, repair_due, quarantined_at_enter
        degraded_since = now
        repair_due = now + rcfg.repair_ns
        quarantined_at_enter = oram.quarantine_pending
        events.append({
            "kind": "degraded_enter", "ns": now,
            "quarantined": quarantined_at_enter,
        })

    def repair() -> None:
        """Rebuild quarantined buckets, replay the journal, go normal."""
        nonlocal degraded_since
        enter_ns = degraded_since
        oram.flush_recovery()
        # Retried reads older than a journaled write on their key must
        # resolve against the pre-replay store (their consistent view
        # vanishes once the journal lands): serve resident ones, fail
        # the rest. Reads on unjournaled keys keep waiting -- their
        # key's state is untouched, normal serving resumes for them.
        journaled_keys = {w.key for w in journal}
        now = sink.now
        still: List[Request] = []
        for req in queue:
            if req.op == GET and req.key in journaled_keys:
                if not serve_degraded_read(req, now):
                    terminal(req, FAILED, now)
                else:
                    retry_meta.pop(req.rid, None)
            else:
                still.append(req)
        queue[:] = still
        replayed = [replace(w, deadline_ns=None) for w in journal]
        journal.clear()
        if replayed:
            comps = scheduler.serve_batch(replayed)
            for c in comps:
                c.degraded = True
            completions.extend(comps)
            result.journal_replayed += len(replayed)
        # Clear every surviving retry backoff: the queue is admission-
        # ordered, so making held-back reads eligible *now* means the
        # next normal batch serves them before any newer same-key write
        # -- a read left in backoff past the repair could otherwise be
        # overtaken by a later arrival, breaking per-key FIFO.
        retry_meta.clear()
        exit_ns = sink.now
        result.episodes.append({
            "enter_ns": enter_ns,
            "exit_ns": exit_ns,
            "rebuilt": quarantined_at_enter,
            "journal_replayed": len(replayed),
        })
        events.append({
            "kind": "degraded_exit", "ns": exit_ns,
            "enter_ns": enter_ns, "journal_replayed": len(replayed),
        })
        degraded_since = None
        note_faults(exit_ns)
        # The replay itself ran over faulty memory; a fresh quarantine
        # re-enters degraded mode immediately.
        if oram.quarantine_pending:
            enter_degraded(exit_ns)

    i, n = 0, len(requests)
    wall0 = time.perf_counter()
    while True:
        now = sink.now
        if sampler is not None:
            sampler.sample(
                now, len(queue), completions,
                degraded_since is not None, len(journal),
            )
        # ---- admit arrivals (bounded queue, shedding past the limit)
        while i < n and requests[i].arrival_ns <= now:
            req = requests[i]
            i += 1
            if rcfg.deadline_ns > 0:
                req = replace(
                    req, deadline_ns=req.arrival_ns + rcfg.deadline_ns
                )
            if rcfg.queue_limit > 0 and len(queue) >= rcfg.queue_limit:
                if rcfg.shed_policy == "reject-new":
                    terminal(req, SHED, now)
                    continue
                victim = queue.pop(0)
                terminal(victim, SHED, now)
            queue.append(req)
        # ---- expire queued deadlines
        expired = [
            r for r in queue
            if r.deadline_ns is not None and now >= r.deadline_ns
        ]
        if expired:
            queue = [r for r in queue if r not in expired]
            for req in expired:
                terminal(req, TIMED_OUT, now)
        # ---- repair window over?
        if degraded_since is not None and now >= repair_due:
            repair()
            continue
        # ---- serve what is eligible
        eligible = [
            r for r in queue
            if retry_meta.get(r.rid, (0, 0.0))[1] <= now
        ][:max_batch]
        if eligible:
            if degraded_since is None:
                queue = [r for r in queue if r not in eligible]
                for r in eligible:
                    retry_meta.pop(r.rid, None)
                completions.extend(scheduler.serve_batch(eligible))
                after = sink.now
                note_faults(after)
                if oram.quarantine_pending:
                    enter_degraded(after)
                continue
            # Degraded: answer reads client-side, journal writes.
            progressed = False
            for req in eligible:
                if req.op == GET:
                    if serve_degraded_read(req, now):
                        queue.remove(req)
                        retry_meta.pop(req.rid, None)
                        progressed = True
                        continue
                    retries, _ = retry_meta.get(req.rid, (0, now))
                    if retries >= rcfg.retry_budget:
                        queue.remove(req)
                        terminal(req, FAILED, now)
                        progressed = True
                        continue
                    retries += 1
                    result.retries += 1
                    backoff = (
                        rcfg.backoff_base_ns
                        * rcfg.backoff_factor ** (retries - 1)
                    )
                    retry_meta[req.rid] = (retries, now + backoff)
                    continue
                # Writes: buffer into the bounded journal; the ack is
                # deferred to the replay (durability is only real then).
                queue.remove(req)
                if rcfg.journal_limit and len(journal) < rcfg.journal_limit:
                    journal.append(req)
                    result.journal_appends += 1
                else:
                    result.journal_sheds += 1
                    terminal(req, SHED, now)
                progressed = True
            if progressed:
                continue
        # ---- idle: advance to the next event on the simulated clock
        wake: List[float] = []
        if i < n:
            wake.append(requests[i].arrival_ns)
        if degraded_since is not None:
            wake.append(repair_due)
        for r in queue:
            meta = retry_meta.get(r.rid)
            if meta is not None:
                wake.append(meta[1])
            if r.deadline_ns is not None:
                wake.append(r.deadline_ns)
        if not wake:
            break
        target = min(wake)
        if target <= now:
            # Float-safe guard: never stall the event loop.
            target = now + 1.0
        sink.advance(target - now)

    result.end_ns = sink.now
    result.wall_s = time.perf_counter() - wall0
    if sampler is not None:
        sampler.finish(result.end_ns, completions)
    return result


__all__ = [
    "ChaosReplayResult",
    "ResilienceConfig",
    "SHED_POLICIES",
    "resilient_replay",
]
