"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``schemes``  -- list the paper's schemes and their geometries;
- ``space``    -- closed-form space/utilization tables (exact at any L);
- ``simulate`` -- run one (scheme, benchmark) timing simulation;
  ``--integrity`` seals the data path and verifies it on every read,
  ``--checkpoint-every N --checkpoint PATH`` persists the run and
  ``--resume PATH`` continues it bit-identically; ``--trace-out PATH``
  writes a Perfetto-loadable Chrome trace of every protocol operation
  and ``--metrics-every N`` controls the JSONL snapshot cadence
  (telemetry observes only: results stay bit-identical);
  ``--shards N`` partitions the trace over N right-sized subtrees
  (:mod:`repro.core.sharding`) and reports the fleet makespan next to
  the per-shard results;
- ``telemetry`` -- ``telemetry view FILE`` renders a telemetry JSONL
  stream as summary tables;
- ``sweep``    -- scheme x benchmark matrix with normalized exec times;
- ``security`` -- the section VI-C guessing-attacker experiment;
- ``doctor``   -- validate configurations against the soundness rules;
- ``figures``  -- regenerate the paper's analytic (space-side) figures;
- ``perf``     -- the performance harness: ``perf run [--smoke]``
  emits a machine-readable report (default generated/BENCH_perf.json),
  ``perf compare`` diffs two reports and fails on throughput
  regressions (the CI gate);
- ``faults``   -- the robustness harness: ``faults run [--smoke]``
  sweeps fault kind x rate against the integrity-verified data path
  and emits generated/BENCH_faults.json; ``--require-detection`` fails
  unless every tampering fault was caught (the CI gate);
- ``serve``    -- the serving harness: ``serve bench [--smoke]``
  replays seed-pinned open-loop workloads (Poisson / bursty arrivals,
  zipf popularity) through the batching request scheduler over the
  oblivious KV store and emits generated/BENCH_serve.json with
  wall-clock and simulated-DRAM-ns latency percentiles;
  ``--require-dedup-win`` fails unless the batch policy beats naive
  FIFO (the CI gate); ``--trace-out`` writes a per-request Perfetto
  timeline; ``serve chaos [--smoke]`` runs the fault-injection
  campaign *under live load* (deadlines, load shedding, degraded-mode
  recovery) and emits generated/BENCH_chaos.json, with
  ``--require-detection`` as its CI gate; ``serve scaling [--smoke]``
  serves one workload on 1..16-shard AB-ORAM fleets
  (:mod:`repro.core.sharding`) and emits generated/BENCH_scaling.json
  -- the capacity curve: fleet throughput, per-shard memory, the
  kill-a-shard drill and the control-plane health summary, with
  ``--require-speedup`` as its CI gate; ``serve compare`` diffs two
  reports of any serve kind; ``serve demo`` runs the threaded KV
  server front-end against live client threads.

``sweep``, ``perf run``, ``faults run``, ``serve bench``, ``serve
chaos``, ``serve scaling`` and ``simulate --shards`` all accept
``--workers N`` to fan their independent cells (or shards) over a
process pool; the deterministic report content never depends on the
worker count.

Every command prints the same text tables the benchmarks emit, so the
CLI doubles as a quick reproduction console.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.report import render_mapping_table
from repro.analysis.space import space_table, utilization_table
from repro.core import schemes as schemes_mod
from repro.core.ab_oram import build_oram
from repro.core.security import GuessingAttacker
from repro.faults.plan import FAULT_KINDS
from repro.perf.profile import SORT_KEYS as PROFILE_SORT_KEYS
from repro.sim import SimConfig
from repro.sim.results import breakdown_fractions
from repro.sim.runner import run_suite, suite_benchmarks
from repro.telemetry import stderr_progress
from repro.traces.parsec import parsec_trace
from repro.traces.spec import spec_trace

ALL_SCHEMES = ["baseline", "ir", "dr", "dr-perf", "ns", "ab", "ring"]


def _resolve(names: Sequence[str], levels: int):
    return [schemes_mod.by_name(n, levels) for n in names]


# ---------------------------------------------------------------- commands

def cmd_schemes(args: argparse.Namespace) -> int:
    for name in args.schemes:
        cfg = schemes_mod.by_name(name, args.levels)
        print(cfg.describe())
        print()
    return 0


def cmd_space(args: argparse.Namespace) -> int:
    cfgs = _resolve(args.schemes, args.levels)
    print(render_mapping_table(
        space_table(cfgs),
        title=f"Space demand (L={args.levels})",
    ))
    print()
    print(render_mapping_table(
        utilization_table(cfgs),
        title="Space utilization",
    ))
    return 0


def _ensure_out_dir(path: str) -> None:
    """Create the report's parent directory (default outs live under
    ``generated/``, which is gitignored scratch space)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def _make_trace(suite: str, bench: str, n_blocks: int, requests: int,
                seed: int):
    factory = spec_trace if suite == "spec" else parsec_trace
    return factory(bench, n_blocks, requests, seed=seed)


def _simulate_telemetry(args: argparse.Namespace):
    """Build the run's Telemetry handle from --trace-out/--metrics-out."""
    from repro.telemetry import Telemetry

    if not (args.trace_out or args.metrics_out):
        return None
    metrics_out = args.metrics_out
    if metrics_out is None and args.trace_out:
        # Default the JSONL stream next to the trace file.
        metrics_out = os.path.splitext(args.trace_out)[0] + ".jsonl"
    return Telemetry(
        trace_path=args.trace_out,
        metrics_path=metrics_out,
        metrics_every=args.metrics_every,
        meta={
            "scheme": args.scheme,
            "suite": args.suite,
            "bench": args.bench,
            "levels": args.levels,
            "requests": args.requests,
            "warmup": args.warmup,
            "seed": args.seed,
        },
    )


def _simulate_sharded(args: argparse.Namespace) -> int:
    """The ``simulate --shards N`` path: a partitioned fleet run."""
    from repro.core.sharding import run_sharded_sim

    incompatible = [
        ("--integrity", args.integrity),
        ("--check", args.check),
        ("--checkpoint", bool(args.checkpoint)),
        ("--checkpoint-every", bool(args.checkpoint_every)),
        ("--resume", bool(args.resume)),
        ("--trace-out", bool(args.trace_out)),
        ("--metrics-out", bool(args.metrics_out)),
    ]
    bad = [flag for flag, on in incompatible if on]
    if bad:
        print(f"error: --shards cannot be combined with {', '.join(bad)} "
              "(shards are independent plain simulations; run those flags "
              "against a single tree)", file=sys.stderr)
        return 2
    cfg = schemes_mod.by_name(args.scheme, args.levels)
    trace = _make_trace(args.suite, args.bench, cfg.n_real_blocks,
                        args.requests, args.seed)
    outcome = run_sharded_sim(
        args.scheme, trace, cfg.n_real_blocks, args.shards,
        warmup_requests=args.warmup, seed=args.seed,
        pipeline_depth=args.pipeline_depth, workers=args.workers,
        progress=stderr_progress,
    )
    merged = outcome.merged_sim_block()
    print(render_mapping_table(
        [{
            "scheme": outcome.scheme,
            "benchmark": outcome.trace,
            "shards": outcome.num_shards,
            "shard_levels": outcome.shard_levels,
            "makespan_ms": merged["exec_ns"] / 1e6,
            "ns_per_access": merged["ns_per_access"],
            "stash_peak": merged["stash_peak"],
            "reshuffles": merged["reshuffles_total"],
            "row_hit": merged["row_hit_rate"],
        }],
        title=f"Sharded simulation (fleet of {outcome.num_shards})",
    ))
    print()
    print(render_mapping_table(
        [{
            "shard": i,
            "blocks": outcome.shard_blocks[i],
            "requests": outcome.shard_requests[i],
            "exec_ms": r.exec_ns / 1e6,
            "ns_per_access": r.ns_per_access,
            "stash_peak": r.stash_peak,
        } for i, r in enumerate(outcome.per_shard)],
        title="Per-shard results",
    ))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.engine import Simulation

    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    if args.shards > 1:
        return _simulate_sharded(args)
    ckpt_path = args.checkpoint or args.resume
    if args.checkpoint_every and not ckpt_path:
        print("error: --checkpoint-every requires --checkpoint PATH "
              "(or --resume)", file=sys.stderr)
        return 2
    telemetry = _simulate_telemetry(args)
    if telemetry is not None and (args.resume or args.checkpoint_every):
        # Checkpoints pickle the whole Simulation; telemetry holds open
        # file handles and a half-written stream.
        print("error: --trace-out/--metrics-out cannot be combined with "
              "checkpointing or --resume", file=sys.stderr)
        return 2
    if args.resume:
        from repro.sim.checkpoint import load_checkpoint
        try:
            simulation = load_checkpoint(args.resume)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"resumed {args.resume} at request {simulation.position}"
              f"/{len(simulation.trace)}", file=sys.stderr)
    else:
        from repro.oram.recovery import RobustnessConfig
        from repro.oram.validate import diagnose_robustness
        robustness = (
            RobustnessConfig(integrity=True) if args.integrity else None
        )
        for finding in diagnose_robustness(
            robustness, n_requests=args.requests,
            checkpoint_every=args.checkpoint_every,
        ):
            print(finding, file=sys.stderr)
        cfg = schemes_mod.by_name(args.scheme, args.levels)
        trace = _make_trace(args.suite, args.bench, cfg.n_real_blocks,
                            args.requests, args.seed)
        simulation = Simulation(cfg, trace, SimConfig(
            seed=args.seed,
            warmup_requests=args.warmup,
            check_invariants=args.check,
            robustness=robustness,
            pipeline_depth=args.pipeline_depth,
        ), telemetry=telemetry)
    try:
        result = simulation.run(
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=ckpt_path,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    fr = breakdown_fractions(result)
    print(render_mapping_table(
        [{
            "scheme": result.scheme,
            "benchmark": result.trace,
            "exec_ms": result.exec_ns / 1e6,
            "ns_per_access": result.ns_per_access,
            "bandwidth_GBps": result.bandwidth_gbps,
            "row_hit": result.row_hit_rate,
            "readpath_p50_ns": result.readpath_p50_ns,
            "readpath_p99_ns": result.readpath_p99_ns,
            "stash_peak": result.stash_peak,
            "ext_ratio": result.extension_ratio,
        }],
        title="Simulation result",
    ))
    print()
    print(render_mapping_table(
        [{"op": k, "time_fraction": v} for k, v in fr.items()],
        title="Memory-time breakdown",
    ))
    if result.robustness is not None:
        rb = result.robustness
        counters = {k: v for k, v in rb["counters"].items() if v}
        rows = [{"event": k, "count": v} for k, v in counters.items()]
        print()
        print(render_mapping_table(
            rows or [{"event": "(none)", "count": 0}],
            title="Robustness events",
        ))
    if telemetry is not None:
        if telemetry.trace_path:
            print(f"\nwrote {telemetry.trace_path} "
                  f"({len(telemetry.spans)} spans)")
        if telemetry.metrics_path:
            print(f"wrote {telemetry.metrics_path} "
                  f"({telemetry.snapshots} snapshots)")
    return 0


def cmd_telemetry_view(args: argparse.Namespace) -> int:
    from repro.telemetry import render_stream

    try:
        print(render_stream(args.file))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    cfgs = _resolve(args.schemes, args.levels)
    benches = args.benchmarks or suite_benchmarks(args.suite)
    results = run_suite(
        cfgs,
        suite=args.suite,
        benchmarks=benches,
        n_requests=args.requests,
        seed=args.seed,
        sim=SimConfig(seed=args.seed, warmup_requests=args.warmup),
        workers=args.workers,
    )
    baseline = cfgs[0].name
    base = results[baseline]
    rows = []
    for bench in benches:
        row = {"benchmark": bench}
        for cfg in cfgs:
            row[cfg.name] = (results[cfg.name][bench].exec_ns
                             / base[bench].exec_ns)
        rows.append(row)
    print(render_mapping_table(
        rows,
        title=f"Execution time normalized to {baseline} (L={args.levels})",
    ))
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    from repro.oram.validate import diagnose
    rc = 0
    for name in args.schemes:
        cfg = schemes_mod.by_name(name, args.levels)
        findings = diagnose(cfg)
        print(f"{cfg.name} (L={args.levels}):")
        if not findings:
            print("  no findings")
        for f in findings:
            print(f"  {f}")
            if f.severity == "ERROR":
                rc = 1
        print()
    return rc


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import figures
    which = args.which
    emitters = {
        "fig4": lambda: render_mapping_table(
            figures.fig4_space_curve(args.levels),
            title="Fig 4 (top): classic Ring, S-3 for the last x levels"),
        "fig8": lambda: "\n\n".join([
            render_mapping_table(figures.fig8_space(args.levels),
                                 title="Fig 8a: normalized space"),
            render_mapping_table(figures.fig8_utilization(args.levels),
                                 title="Fig 8b: utilization"),
        ]),
        "fig11": lambda: render_mapping_table(
            figures.fig11_space_curve(args.levels),
            title="Fig 11 (space): DR starting-level sweep"),
        "fig13": lambda: render_mapping_table(
            figures.fig13_space_grid(args.levels),
            title="Fig 13 (space): NS Ly-Sx grid"),
        "table1": lambda: render_mapping_table(
            figures.table1_rows(args.levels),
            title="Table I: metadata bits"),
        "overheads": lambda: render_mapping_table(
            [figures.overheads(args.levels)],
            title="Section VIII-H overheads"),
    }
    for name in (emitters if which == "all" else [which]):
        print(emitters[name]())
        print()
    return 0


def cmd_perf_run(args: argparse.Namespace) -> int:
    from repro.perf import run_perf, smoke_config, full_config
    from repro.perf.report import render_report
    import json

    factory = smoke_config if args.smoke else full_config
    overrides = {}
    if args.schemes:
        overrides["schemes"] = tuple(args.schemes)
    if args.benchmarks:
        overrides["benchmarks"] = tuple(args.benchmarks)
    if args.levels is not None:
        overrides["levels"] = args.levels
    if args.requests is not None:
        overrides["n_requests"] = args.requests
    if args.warmup is not None:
        overrides["warmup_requests"] = args.warmup
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    cfg = factory(progress=stderr_progress, workers=args.workers,
                  telemetry=args.telemetry, **overrides)
    doc = run_perf(cfg)
    _ensure_out_dir(args.out)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(render_report(doc))
    print(f"\nwrote {args.out}")
    return 0


def cmd_perf_profile(args: argparse.Namespace) -> int:
    from repro.perf.profile import parse_cell, profile_cell

    scheme, benchmark, depth = args.scheme, args.benchmark, args.pipeline_depth
    if args.cell:
        try:
            sel = parse_cell(args.cell)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        scheme, benchmark = sel["scheme"], sel["benchmark"]
        depth = sel["pipeline_depth"]
        if scheme not in ALL_SCHEMES:
            print(f"error: unknown scheme {scheme!r} in --cell "
                  f"(choose from {', '.join(ALL_SCHEMES)})", file=sys.stderr)
            return 2
    suffix = f"_p{depth}" if depth > 1 else ""
    out = args.out or f"generated/PROFILE_{scheme}_{benchmark}{suffix}.txt"
    report = profile_cell(
        scheme=scheme,
        benchmark=benchmark,
        suite=args.suite,
        levels=args.levels,
        n_requests=args.requests,
        warmup_requests=args.warmup,
        seed=args.seed,
        top_n=args.top,
        sort=args.sort,
        pipeline_depth=depth,
    )
    _ensure_out_dir(out)
    with open(out, "w") as f:
        f.write(report["text"])
    print(report["text"])
    print(f"wrote {out}")
    return 0


def cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro.perf.compare import EXIT_OK, compare_files

    code, messages = compare_files(args.baseline, args.new,
                                   threshold_pct=args.threshold)
    for msg in messages:
        print(msg)
    if args.warn_only and code != EXIT_OK:
        print(f"(warn-only: suppressing exit code {code})")
        return EXIT_OK
    return code


#: Campaign cells whose faults tamper with sealed state; with the
#: integrity tree on, CI requires every one of them to be detected.
_TAMPER_KINDS = ("bit_flip", "replay")


def cmd_faults_run(args: argparse.Namespace) -> int:
    from repro.faults.campaign import full_config, run_campaign, smoke_config
    from repro.faults.report import render_report
    from repro.faults.schema import validate_report
    import json

    factory = smoke_config if args.smoke else full_config
    overrides = {}
    if args.kinds:
        overrides["kinds"] = tuple(args.kinds)
    if args.rates:
        overrides["rates"] = tuple(args.rates)
    if args.levels is not None:
        overrides["levels"] = args.levels
    if args.requests is not None:
        overrides["n_requests"] = args.requests
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.retry_budget is not None:
        overrides["retry_budget"] = args.retry_budget
    if args.no_quarantine:
        overrides["quarantine"] = False
    if args.no_integrity:
        overrides["integrity"] = False
    try:
        cfg = factory(progress=stderr_progress, workers=args.workers,
                      telemetry=args.telemetry, **overrides)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    doc = run_campaign(cfg)
    errors = validate_report(doc)
    if errors:
        for e in errors:
            print(f"error: report self-check failed: {e}", file=sys.stderr)
        return 2
    _ensure_out_dir(args.out)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(render_report(doc))
    print(f"\nwrote {args.out}")
    if args.require_detection:
        bad = []
        for cell in doc["cells"]:
            if cell["fault"] not in _TAMPER_KINDS:
                continue
            if "error" in cell:
                # An errored tampering cell means detection went
                # unverified; that is a gap, not a pass.
                bad.append(f"{cell['fault']}@{cell['rate']:g}: cell errored")
                continue
            if cell["undetected"] or cell["detected"] != cell["injected"]:
                bad.append(
                    f"{cell['fault']}@{cell['rate']:g}: "
                    f"injected={cell['injected']} "
                    f"detected={cell['detected']} "
                    f"undetected={cell['undetected']}"
                )
        if bad:
            for line in bad:
                print(f"DETECTION GAP {line}")
            return 1
        print("detection check: all tampering faults detected")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import (
        dedup_check, full_config, run_serve, smoke_config,
    )
    from repro.serve.report import render_report
    from repro.serve.schema import validate_report
    import json

    factory = smoke_config if args.smoke else full_config
    overrides = {}
    if args.levels is not None:
        overrides["levels"] = args.levels
    if args.scheme is not None:
        overrides["scheme"] = args.scheme
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    if args.trace_out is not None:
        overrides["trace_out"] = args.trace_out
    cfg = factory(progress=stderr_progress, workers=args.workers,
                  **overrides)
    doc = run_serve(cfg)
    errors = validate_report(doc)
    if errors:
        for e in errors:
            print(f"error: report self-check failed: {e}", file=sys.stderr)
        return 2
    _ensure_out_dir(args.out)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(render_report(doc))
    print(f"\nwrote {args.out}")
    if args.trace_out:
        print(f"wrote {args.trace_out}")
    if args.require_dedup_win:
        problems = dedup_check(doc)
        if problems:
            for line in problems:
                print(f"DEDUP GAP {line}")
            return 1
        print("dedup check: batch policy beats naive FIFO")
    return 0


def cmd_serve_compare(args: argparse.Namespace) -> int:
    from repro.serve.compare import EXIT_OK, compare_files

    code, messages = compare_files(args.baseline, args.new,
                                   threshold_pct=args.threshold)
    for msg in messages:
        print(msg)
    if args.warn_only and code != EXIT_OK:
        print(f"(warn-only: suppressing exit code {code})")
        return EXIT_OK
    return code


def cmd_serve_chaos(args: argparse.Namespace) -> int:
    from repro.serve.chaos import (
        chaos_check, full_config, run_chaos, smoke_config,
    )
    from repro.serve.report import render_chaos_report
    from repro.serve.schema import validate_chaos_report
    import json

    factory = smoke_config if args.smoke else full_config
    overrides = {}
    if args.levels is not None:
        overrides["levels"] = args.levels
    if args.scheme is not None:
        overrides["scheme"] = args.scheme
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    if args.trace_out is not None:
        overrides["trace_out"] = args.trace_out
    if args.shards is not None:
        overrides["num_shards"] = args.shards
    if args.slo_out is not None:
        overrides["slo_out"] = args.slo_out
    if args.ops_out is not None:
        overrides["ops_out"] = args.ops_out
    cfg = factory(progress=stderr_progress, workers=args.workers,
                  **overrides)
    if cfg.num_shards <= 1 and (cfg.slo_out or cfg.ops_out):
        print("error: --slo-out/--ops-out require --shards > 1",
              file=sys.stderr)
        return 2
    doc = run_chaos(cfg)
    errors = validate_chaos_report(doc)
    if errors:
        for e in errors:
            print(f"error: report self-check failed: {e}", file=sys.stderr)
        return 2
    _ensure_out_dir(args.out)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(render_chaos_report(doc))
    print(f"\nwrote {args.out}")
    if args.trace_out:
        print(f"wrote {args.trace_out}")
    if args.slo_out:
        print(f"wrote {args.slo_out}")
    if args.ops_out:
        print(f"wrote {args.ops_out}")
    if args.require_detection:
        problems = chaos_check(doc)
        if problems:
            for line in problems:
                print(f"CHAOS GAP {line}")
            return 1
        print("chaos check: availability floors held, all tampering "
              "faults detected under live load")
    return 0


def cmd_serve_top(args: argparse.Namespace) -> int:
    """The ops console: ``top(1)`` over a fleet ops stream."""
    from repro.telemetry import run_console

    path = args.replay
    if path is None:
        # Live mode: record a small sharded campaign, then play it.
        from repro.serve.chaos import run_chaos, smoke_config

        path = args.out
        _ensure_out_dir(path)
        cfg = smoke_config(
            num_shards=args.shards, workers=args.workers,
            ops_out=path, progress=stderr_progress,
        )
        run_chaos(cfg)
        print(f"wrote {path}", file=sys.stderr)
    frames = run_console(path, interval=args.interval,
                         max_frames=args.frames, clear=not args.no_clear)
    if frames == 0:
        print(f"error: {path}: no renderable frames", file=sys.stderr)
        return 1
    return 0


def cmd_serve_scaling(args: argparse.Namespace) -> int:
    from repro.serve.report import render_scaling_report
    from repro.serve.scaling import (
        full_config, run_scaling, scaling_check, smoke_config,
    )
    from repro.serve.schema import validate_scaling_report
    import json

    factory = smoke_config if args.smoke else full_config
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    if args.measured_levels is not None:
        overrides["measured_levels"] = args.measured_levels
    cfg = factory(progress=stderr_progress, workers=args.workers,
                  **overrides)
    doc = run_scaling(cfg)
    errors = validate_scaling_report(doc)
    if errors:
        for e in errors:
            print(f"error: report self-check failed: {e}", file=sys.stderr)
        return 2
    _ensure_out_dir(args.out)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(render_scaling_report(doc))
    print(f"\nwrote {args.out}")
    if args.require_speedup is not None:
        problems = scaling_check(doc, min_speedup=args.require_speedup)
        if problems:
            for line in problems:
                print(f"SCALING GAP {line}")
            return 1
        print(f"scaling check: fleet speedup >= {args.require_speedup:g}x "
              "at 4 shards, drills recovered above their availability "
              "floors, control plane healthy")
    return 0


def cmd_serve_demo(args: argparse.Namespace) -> int:
    """Exercise the threaded front-end with live client threads."""
    import threading

    from repro.serve import GET, KVServer, build_stack
    from repro.serve.loadgen import key_name, value_for

    stack = build_stack(scheme=args.scheme, levels=args.levels,
                        seed=args.seed, observer=True)
    server = KVServer(stack.kv, policy=args.policy,
                      max_batch=args.max_batch, seed=args.seed)
    n_keys = max(2, args.requests // 8)

    def client(cid: int) -> None:
        rng = np.random.default_rng(args.seed * 1000 + cid)
        for i in range(args.requests // args.clients):
            key = key_name(int(rng.integers(n_keys)))
            if rng.random() < 0.5:
                value = value_for(key, cid * 100_000 + i)
                server.put(key, value)
            else:
                server.submit(GET, key)

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(args.clients)]
    with server:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    stats = server.stats()
    print(render_mapping_table(
        [{
            "requests": stats["requests"],
            "batches": stats["batches"],
            "dedup_hits": stats["dedup_hits"],
            "coalesced_puts": stats["coalesced_puts"],
            "accesses": stats["accesses_issued"],
            "mean_batch": (stats["requests"] / stats["batches"]
                           if stats["batches"] else 0.0),
        }],
        title=f"serve demo: {args.clients} clients x "
              f"{args.requests // args.clients} ops ({args.policy})",
    ))
    if stack.attacker is not None:
        print(f"attacker advantage: {stack.attacker.advantage():+.4f} "
              f"(success {stack.attacker.success_rate:.4f}, "
              f"expected {stack.attacker.expected_rate:.4f})")
    return 0


def cmd_security(args: argparse.Namespace) -> int:
    rows = []
    for name in args.schemes:
        cfg = schemes_mod.by_name(name, args.levels)
        attacker = GuessingAttacker(cfg.levels, seed=args.seed)
        oram = build_oram(cfg, seed=args.seed, observers=[attacker])
        oram.warm_fill()
        rng = np.random.default_rng(args.seed + 1)
        for _ in range(args.accesses):
            oram.access(int(rng.integers(cfg.n_real_blocks)))
        rows.append({
            "scheme": name,
            "guesses": attacker.guesses,
            "success_rate": attacker.success_rate,
            "expected_1_over_L": attacker.expected_rate,
            "advantage": attacker.advantage(),
        })
    print(render_mapping_table(
        rows,
        title=f"Guessing attacker, {args.accesses} accesses (L={args.levels})",
        precision=4,
    ))
    return 0


# ------------------------------------------------------------------ parser

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AB-ORAM reproduction console",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schemes", help="describe scheme geometries")
    p.add_argument("--levels", type=int, default=24)
    p.add_argument("--schemes", nargs="+", default=ALL_SCHEMES,
                   choices=ALL_SCHEMES)
    p.set_defaults(func=cmd_schemes)

    p = sub.add_parser("space", help="closed-form space tables")
    p.add_argument("--levels", type=int, default=24)
    p.add_argument("--schemes", nargs="+",
                   default=["baseline", "ir", "dr", "ns", "ab"],
                   choices=ALL_SCHEMES)
    p.set_defaults(func=cmd_space)

    p = sub.add_parser("simulate", help="one (scheme, benchmark) run")
    p.add_argument("--scheme", default="ab", choices=ALL_SCHEMES)
    p.add_argument("--suite", default="spec", choices=["spec", "parsec"])
    p.add_argument("--bench", default="mcf")
    p.add_argument("--levels", type=int, default=12)
    p.add_argument("--requests", type=int, default=1000)
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pipeline-depth", type=int, default=1, metavar="D",
                   help="transaction-pipeline depth: overlap the path "
                        "read of access k+1 with the reshuffle/eviction "
                        "drain of access k (default 1 = the serial "
                        "controller, bit-identical to earlier releases; "
                        "logical results are identical at every depth)")
    p.add_argument("--check", action="store_true",
                   help="verify protocol invariants after the run")
    p.add_argument("--integrity", action="store_true",
                   help="seal the data path and verify bucket MACs plus "
                        "the Merkle root on every read path")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="checkpoint file for --checkpoint-every")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="pickle the full simulation every N requests")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="resume from a checkpoint (continues "
                        "bit-identically; scheme/trace flags are ignored)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a Chrome trace-event JSON (load in Perfetto "
                        "or chrome://tracing) with one span per protocol "
                        "operation, in DRAM-model ns; telemetry only "
                        "observes -- the results stay bit-identical")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="telemetry JSONL stream path (default: derived "
                        "from --trace-out with a .jsonl suffix)")
    p.add_argument("--metrics-every", type=int, default=100, metavar="N",
                   help="snapshot stash/DeadQ/rental state every N "
                        "requests into the JSONL stream (default: 100; "
                        "0 disables periodic snapshots)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="partition the trace over N independent subtrees "
                        "via the keyed-PRF shard map and report the fleet "
                        "makespan (default 1 = one tree; incompatible "
                        "with checkpointing, telemetry and --integrity)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width for --shards fan-out (results "
                        "are byte-identical to --workers 1)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("sweep", help="scheme x benchmark matrix")
    p.add_argument("--schemes", nargs="+",
                   default=["baseline", "dr", "ns", "ab"],
                   choices=ALL_SCHEMES)
    p.add_argument("--suite", default="spec", choices=["spec", "parsec"])
    p.add_argument("--benchmarks", nargs="*", default=None)
    p.add_argument("--levels", type=int, default=12)
    p.add_argument("--requests", type=int, default=800)
    p.add_argument("--warmup", type=int, default=250)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width for the matrix cells "
                        "(results are identical to --workers 1)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("figures", help="regenerate analytic figures")
    p.add_argument("--which", default="all",
                   choices=["all", "fig4", "fig8", "fig11", "fig13",
                            "table1", "overheads"])
    p.add_argument("--levels", type=int, default=24)
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("doctor", help="validate scheme configurations")
    p.add_argument("--levels", type=int, default=24)
    p.add_argument("--schemes", nargs="+", default=ALL_SCHEMES,
                   choices=ALL_SCHEMES)
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser("perf", help="performance harness (run / compare)")
    perf_sub = p.add_subparsers(dest="perf_command", required=True)

    pr = perf_sub.add_parser("run", help="run the perf matrix")
    pr.add_argument("--smoke", action="store_true",
                    help="seconds-scale matrix for CI")
    pr.add_argument("--out", default="generated/BENCH_perf.json",
                    help="report path (default: generated/BENCH_perf.json; "
                         "the directory is created if missing)")
    pr.add_argument("--workers", type=int, default=1,
                    help="process-pool width for the matrix cells; the "
                         "sim blocks are identical to --workers 1, only "
                         "wall_s/accesses_per_s are host-dependent")
    pr.add_argument("--schemes", nargs="+", default=None,
                    choices=ALL_SCHEMES)
    pr.add_argument("--benchmarks", nargs="+", default=None)
    pr.add_argument("--levels", type=int, default=None)
    pr.add_argument("--requests", type=int, default=None)
    pr.add_argument("--warmup", type=int, default=None)
    pr.add_argument("--seed", type=int, default=None)
    pr.add_argument("--repeats", type=int, default=None,
                    help="per-cell repeats; wall time is the best run")
    pr.add_argument("--telemetry", action="store_true",
                    help="attach a metrics registry to every cell and add "
                         "a merged 'telemetry' block to the report "
                         "(deterministic; identical for any --workers)")
    pr.set_defaults(func=cmd_perf_run)

    pp = perf_sub.add_parser(
        "profile",
        help="cProfile one matrix cell (hot-path work starts from data)")
    pp.add_argument("--scheme", default="ab", choices=ALL_SCHEMES,
                    help="matrix cell scheme (default: ab, the slowest)")
    pp.add_argument("--benchmark", default="mcf",
                    help="matrix cell trace (default: mcf)")
    pp.add_argument("--cell", default=None, metavar="SCHEME/TRACE[@pN]",
                    help="cell selector in report-key form (e.g. ns/mcf@p4 "
                         "profiles the pipelined perf cell at depth 4); "
                         "overrides --scheme/--benchmark/--pipeline-depth")
    pp.add_argument("--pipeline-depth", type=int, default=1, metavar="D",
                    help="profile the cell on the pipelined controller at "
                         "this depth (default 1 = serial)")
    pp.add_argument("--suite", default="spec", choices=["spec", "parsec"])
    pp.add_argument("--levels", type=int, default=12)
    pp.add_argument("--requests", type=int, default=2000)
    pp.add_argument("--warmup", type=int, default=400)
    pp.add_argument("--seed", type=int, default=0)
    pp.add_argument("--top", type=int, default=30,
                    help="functions to show (default: 30)")
    pp.add_argument("--sort", default="cumulative",
                    choices=list(PROFILE_SORT_KEYS),
                    help="pstats sort key (default: cumulative)")
    pp.add_argument("--out", default=None,
                    help="report path (default: generated/"
                         "PROFILE_<scheme>_<benchmark>.txt)")
    pp.set_defaults(func=cmd_perf_profile)

    pc = perf_sub.add_parser("compare", help="diff two perf reports")
    pc.add_argument("baseline", help="baseline BENCH_perf.json")
    pc.add_argument("new", help="candidate BENCH_perf.json")
    pc.add_argument("--threshold", type=float, default=10.0,
                    help="max tolerated throughput drop, percent")
    pc.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0 (CI soft gate)")
    pc.set_defaults(func=cmd_perf_compare)

    p = sub.add_parser("faults", help="fault-injection campaign harness")
    faults_sub = p.add_subparsers(dest="faults_command", required=True)

    fr = faults_sub.add_parser("run", help="sweep fault kind x rate")
    fr.add_argument("--smoke", action="store_true",
                    help="seconds-scale campaign for CI")
    fr.add_argument("--out", default="generated/BENCH_faults.json",
                    help="report path (default: generated/BENCH_faults.json; "
                         "the directory is created if missing)")
    fr.add_argument("--workers", type=int, default=1,
                    help="process-pool width for the kind x rate cells; "
                         "the report is byte-identical to --workers 1")
    fr.add_argument("--kinds", nargs="+", default=None,
                    choices=list(FAULT_KINDS))
    fr.add_argument("--rates", nargs="+", type=float, default=None,
                    help="per-operation fault probabilities to sweep")
    fr.add_argument("--levels", type=int, default=None)
    fr.add_argument("--requests", type=int, default=None)
    fr.add_argument("--seed", type=int, default=None)
    fr.add_argument("--retry-budget", type=int, default=None,
                    help="transient-fault retries before quarantine")
    fr.add_argument("--no-quarantine", action="store_true",
                    help="disable quarantine-and-rebuild (detect only)")
    fr.add_argument("--no-integrity", action="store_true",
                    help="drop the Merkle tree (replays go undetected; "
                        "for demonstrating why integrity matters)")
    fr.add_argument("--require-detection", action="store_true",
                    help="exit 1 unless every tampering fault (bit flip, "
                        "replay) was detected -- the CI gate")
    fr.add_argument("--telemetry", action="store_true",
                    help="attach a metrics registry to every cell and add "
                         "a merged 'telemetry' block to the report "
                         "(deterministic; identical for any --workers)")
    fr.set_defaults(func=cmd_faults_run)

    p = sub.add_parser("serve", help="serving harness (bench / compare / "
                                     "demo)")
    serve_sub = p.add_subparsers(dest="serve_command", required=True)

    sb = serve_sub.add_parser("bench", help="replay open-loop workloads "
                                            "through the batching scheduler")
    sb.add_argument("--smoke", action="store_true",
                    help="seconds-scale matrix for CI")
    sb.add_argument("--out", default="generated/BENCH_serve.json",
                    help="report path (default: generated/BENCH_serve.json; "
                         "the directory is created if missing)")
    sb.add_argument("--workers", type=int, default=1,
                    help="process-pool width for the workload x policy "
                         "cells; the sim blocks are byte-identical to "
                         "--workers 1, only wall_* fields are "
                         "host-dependent")
    sb.add_argument("--scheme", default=None, choices=ALL_SCHEMES)
    sb.add_argument("--levels", type=int, default=None)
    sb.add_argument("--seed", type=int, default=None)
    sb.add_argument("--max-batch", type=int, default=None,
                    help="admission batch cap per scheduling round")
    sb.add_argument("--trace-out", default=None, metavar="PATH",
                    help="write a per-request Perfetto trace of the most "
                         "loaded (workload, batch) cell: queue spans, "
                         "service spans, and ORAM op spans on separate "
                         "tracks, all in simulated DRAM ns")
    sb.add_argument("--require-dedup-win", action="store_true",
                    help="exit 1 unless the batch policy issues fewer "
                         "oblivious accesses than naive FIFO on workloads "
                         "that expect it -- the CI gate")
    sb.set_defaults(func=cmd_serve_bench)

    sx = serve_sub.add_parser("chaos", help="fault-injection campaign "
                                            "under live serving load")
    sx.add_argument("--smoke", action="store_true",
                    help="seconds-scale campaign for CI")
    sx.add_argument("--out", default="generated/BENCH_chaos.json",
                    help="report path (default: generated/BENCH_chaos.json; "
                         "the directory is created if missing)")
    sx.add_argument("--workers", type=int, default=1,
                    help="process-pool width for the campaign cells; the "
                         "sim blocks are byte-identical to --workers 1, "
                         "only wall_* fields are host-dependent")
    sx.add_argument("--scheme", default=None, choices=ALL_SCHEMES)
    sx.add_argument("--levels", type=int, default=None)
    sx.add_argument("--seed", type=int, default=None)
    sx.add_argument("--max-batch", type=int, default=None,
                    help="admission batch cap per scheduling round")
    sx.add_argument("--trace-out", default=None, metavar="PATH",
                    help="write a Perfetto trace of the degraded-mode "
                         "cell: request lanes plus a resilience track "
                         "with degraded windows and fault markers (with "
                         "--shards: one merged fleet trace with per-shard "
                         "process tracks and router flow events)")
    sx.add_argument("--shards", type=int, default=None, metavar="N",
                    help="partition every cell over an N-shard fleet of "
                         "independently seeded stacks; the report gains "
                         "per-shard, control-plane and SLO blocks, all "
                         "byte-identical at any worker count")
    sx.add_argument("--slo-out", default=None, metavar="PATH",
                    help="write the streaming SLO engine's slo_window/"
                         "slo_alert records as JSONL (requires --shards)")
    sx.add_argument("--ops-out", default=None, metavar="PATH",
                    help="write the per-shard ops stream 'repro serve "
                         "top --replay' renders (requires --shards)")
    sx.add_argument("--require-detection", action="store_true",
                    help="exit 1 unless every cell held its availability "
                         "floor and every injected tampering fault was "
                         "detected while serving -- the CI gate")
    sx.set_defaults(func=cmd_serve_chaos)

    st = serve_sub.add_parser("top", help="live ops console: per-shard "
                                          "health/queue/latency table over "
                                          "a fleet ops stream")
    st.add_argument("--replay", default=None, metavar="FILE",
                    help="replay a recorded ops JSONL stream (written by "
                         "'serve chaos --shards N --ops-out FILE'); the "
                         "rendered frames are deterministic")
    st.add_argument("--out", default="generated/ops_stream.jsonl",
                    help="live mode: where the recorded stream lands "
                         "(default: generated/ops_stream.jsonl)")
    st.add_argument("--shards", type=int, default=4,
                    help="live mode: fleet width of the recorded campaign")
    st.add_argument("--workers", type=int, default=1,
                    help="live mode: process-pool width")
    st.add_argument("--frames", type=int, default=None,
                    help="render at most N frames")
    st.add_argument("--interval", type=float, default=0.0, metavar="SECONDS",
                    help="pause between frames (0 prints them all at once)")
    st.add_argument("--no-clear", action="store_true",
                    help="never clear the screen between frames")
    st.set_defaults(func=cmd_serve_top)

    ss = serve_sub.add_parser("scaling", help="capacity curve over 1..N "
                                              "shard AB-ORAM fleets")
    ss.add_argument("--smoke", action="store_true",
                    help="seconds-scale curve for CI (2^16 blocks, "
                         "shards 1/2/4, plus the kill-a-shard drill)")
    ss.add_argument("--out", default="generated/BENCH_scaling.json",
                    help="report path (default: generated/"
                         "BENCH_scaling.json; the directory is created "
                         "if missing)")
    ss.add_argument("--workers", type=int, default=1,
                    help="process-pool width for each fleet's shards; "
                         "the report is byte-identical to --workers 1 "
                         "except the wall_s fields")
    ss.add_argument("--seed", type=int, default=None)
    ss.add_argument("--max-batch", type=int, default=None,
                    help="admission batch cap per shard scheduler round")
    ss.add_argument("--measured-levels", type=int, default=None,
                    help="tree depth the measured shard stacks run at "
                         "(memory analytics always use the right-sized "
                         "per-shard depth)")
    ss.add_argument("--require-speedup", type=float, default=None,
                    metavar="RATIO",
                    help="exit 1 unless every blocks row's 4-shard fleet "
                         "beats its 1-shard fleet by RATIO in simulated "
                         "ns/request, every drill recovers above its "
                         "availability floor and the control plane ends "
                         "healthy -- the CI gate")
    ss.set_defaults(func=cmd_serve_scaling)

    sc = serve_sub.add_parser("compare", help="diff two serve, chaos or "
                                              "scaling reports "
                                              "(kind-dispatched)")
    sc.add_argument("baseline", help="baseline BENCH_serve.json, "
                                     "BENCH_chaos.json or "
                                     "BENCH_scaling.json")
    sc.add_argument("new", help="candidate report of the same kind")
    sc.add_argument("--threshold", type=float, default=10.0,
                    help="max tolerated simulated-throughput drop or p99 "
                         "rise, percent (chaos reports additionally gate "
                         "availability and tamper detection)")
    sc.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0 (CI soft gate)")
    sc.set_defaults(func=cmd_serve_compare)

    sd = serve_sub.add_parser("demo", help="threaded KV server demo with "
                                           "live client threads")
    sd.add_argument("--scheme", default="ab", choices=ALL_SCHEMES)
    sd.add_argument("--levels", type=int, default=10)
    sd.add_argument("--seed", type=int, default=0)
    sd.add_argument("--clients", type=int, default=4)
    sd.add_argument("--requests", type=int, default=200,
                    help="total operations across all clients")
    sd.add_argument("--policy", default="batch", choices=["fifo", "batch"])
    sd.add_argument("--max-batch", type=int, default=32)
    sd.set_defaults(func=cmd_serve_demo)

    p = sub.add_parser("telemetry", help="inspect telemetry streams")
    tel_sub = p.add_subparsers(dest="telemetry_command", required=True)
    tv = tel_sub.add_parser("view", help="render a telemetry JSONL stream")
    tv.add_argument("file", help="JSONL stream written by --metrics-out "
                                 "(or derived from --trace-out)")
    tv.set_defaults(func=cmd_telemetry_view)

    p = sub.add_parser("security", help="guessing-attacker experiment")
    p.add_argument("--schemes", nargs="+", default=["baseline", "ab"],
                   choices=ALL_SCHEMES)
    p.add_argument("--levels", type=int, default=10)
    p.add_argument("--accesses", type=int, default=3000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_security)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # ``python -m repro perf --smoke`` is sugar for ``perf run --smoke``
    # (and likewise for ``faults``; ``serve`` defaults to its bench).
    if argv and argv[0] in ("perf", "faults") and (
        len(argv) == 1 or argv[1].startswith("-")
    ):
        argv.insert(1, "run")
    if argv and argv[0] == "serve" and (
        len(argv) == 1 or argv[1].startswith("-")
    ):
        argv.insert(1, "bench")
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
