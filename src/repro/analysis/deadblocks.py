"""Dead-block measurement observers (paper Figs. 2, 3, 12).

- :class:`DeadBlockCensus` samples the total dead-block population at a
  fixed online-access interval (Fig. 2's rise-then-plateau curve) and
  can snapshot the per-level census (Fig. 3).
- :class:`LifetimeTracker` measures how long each slot stays dead --
  from the readPath that consumed it to the reshuffle or remote rental
  that reused its space -- per level (Fig. 12's min/avg/max lines,
  which spread over orders of magnitude between middle and leaf
  levels).

Both attach to a controller as observers; the census additionally needs
``attach(oram)`` to read the bucket store for snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.oram.observer import BaseObserver


class DeadBlockCensus(BaseObserver):
    """Periodic sampling of the dead-block population."""

    def __init__(self, interval: int = 100) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.samples: List[Tuple[int, int]] = []  # (online access, dead blocks)
        self._oram = None

    def attach(self, oram) -> "DeadBlockCensus":
        """Bind to a controller and register as its observer."""
        self._oram = oram
        oram.observers.append(self)
        return self

    def on_access_start(self, access_no: int) -> None:
        if self._oram is None:
            return
        if access_no % self.interval == 0:
            self.samples.append(
                (access_no, self._oram.store.total_dead_slots())
            )

    def per_level_snapshot(self) -> np.ndarray:
        """Current per-level dead-block counts (Fig. 3)."""
        if self._oram is None:
            raise RuntimeError("census not attached to a controller")
        return self._oram.store.dead_slots_by_level()

    @property
    def stabilized_population(self) -> float:
        """Mean of the last quarter of samples (the plateau level)."""
        if not self.samples:
            return 0.0
        tail = self.samples[-max(1, len(self.samples) // 4):]
        return float(np.mean([d for _, d in tail]))


class LifetimeTracker(BaseObserver):
    """Per-level dead-block lifetime statistics.

    Lifetime is measured in online accesses, exactly as the paper's
    Fig. 12: the clock is the controller's online access counter, a
    slot's death is the read that consumes it, and its reclamation is
    the reshuffle rewrite or remote rental that reuses the space.
    """

    def __init__(self, levels: int) -> None:
        self.levels = levels
        self._clock = 0
        self._death_time: Dict[Tuple[int, int], int] = {}
        self.count = np.zeros(levels, dtype=np.int64)
        self.total = np.zeros(levels, dtype=np.float64)
        self.minimum = np.full(levels, np.inf)
        self.maximum = np.zeros(levels, dtype=np.float64)

    def on_access_start(self, access_no: int) -> None:
        self._clock = access_no

    def on_slot_dead(self, bucket: int, slot: int, level: int) -> None:
        self._death_time[(bucket, slot)] = self._clock

    def on_slot_reclaimed(self, bucket: int, slot: int, level: int, how: str) -> None:
        died = self._death_time.pop((bucket, slot), None)
        if died is None:
            return
        life = self._clock - died
        self.count[level] += 1
        self.total[level] += life
        if life < self.minimum[level]:
            self.minimum[level] = life
        if life > self.maximum[level]:
            self.maximum[level] = life

    # ------------------------------------------------------------- queries

    def mean(self) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.count > 0, self.total / self.count, np.nan)

    def rows(self) -> List[Dict[str, float]]:
        """Per-level {level, n, min, avg, max} (NaN-free for display)."""
        means = self.mean()
        out = []
        for lv in range(self.levels):
            if self.count[lv] == 0:
                continue
            out.append({
                "level": lv,
                "reclaimed": int(self.count[lv]),
                "min": float(self.minimum[lv]),
                "avg": float(means[lv]),
                "max": float(self.maximum[lv]),
            })
        return out

    def pending_dead(self) -> int:
        """Slots currently dead (death seen, reclamation not yet)."""
        return len(self._death_time)
