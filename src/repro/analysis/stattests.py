"""Statistical tests for protocol randomness claims.

Security arguments lean on distributional statements -- remaps are
uniform over leaves, attacker success is Bernoulli(1/L), slot choices
are unbiased. These helpers turn those statements into principled
pass/fail checks (used by the test suite and the security benchmarks)
instead of hand-tuned tolerances:

- :func:`chi_square_uniform` -- goodness-of-fit of observed counts
  against the uniform distribution;
- :func:`binomial_interval` -- a normal-approximation confidence
  interval for a success probability;
- :func:`proportion_gap_significant` -- two-sample z-test for the
  difference between two observed proportions.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats


def chi_square_uniform(counts: Sequence[int]) -> Tuple[float, float]:
    """Chi-square test of ``counts`` against uniformity.

    Returns ``(statistic, p_value)``; a small p-value rejects
    uniformity. Bins with tiny expectations make the test unreliable,
    so at least 5 expected observations per bin are required.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("need a 1-D array of >= 2 bins")
    if (arr < 0).any():
        raise ValueError("counts must be non-negative")
    total = arr.sum()
    expected = total / arr.size
    if expected < 5:
        raise ValueError(
            f"too few observations ({total}) for {arr.size} bins"
        )
    stat = float(((arr - expected) ** 2 / expected).sum())
    p = float(_scipy_stats.chi2.sf(stat, df=arr.size - 1))
    return stat, p


def binomial_interval(
    successes: int, trials: int, z: float = 3.0
) -> Tuple[float, float]:
    """Normal-approximation CI for a Bernoulli probability.

    ``z = 3`` gives ~99.7% coverage -- wide enough that a test
    asserting "1/L lies in the interval" practically never flakes
    while still catching real bias.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    p = successes / trials
    half = z * math.sqrt(max(p * (1 - p), 1e-12) / trials)
    return max(0.0, p - half), min(1.0, p + half)


def proportion_gap_significant(
    successes_a: int, trials_a: int,
    successes_b: int, trials_b: int,
    z: float = 3.0,
) -> bool:
    """True if two observed proportions differ significantly.

    Pooled two-sample z-test; used to ask "does AB's attacker success
    rate differ from the Baseline's?" (it must not).
    """
    if trials_a <= 0 or trials_b <= 0:
        raise ValueError("trials must be positive")
    pa = successes_a / trials_a
    pb = successes_b / trials_b
    pool = (successes_a + successes_b) / (trials_a + trials_b)
    se = math.sqrt(max(pool * (1 - pool), 1e-12)
                   * (1 / trials_a + 1 / trials_b))
    return abs(pa - pb) > z * se
