"""The paper's *analytic* figures as a library API.

The simulation-driven figures live in ``benchmarks/`` (they take
minutes); everything that is pure geometry is also exposed here as
plain functions returning row dicts, so notebooks and downstream tools
can regenerate the paper's space-side results instantly without pytest:

- :func:`fig8_space` / :func:`fig8_utilization` -- the headline tables;
- :func:`fig4_space_curve` -- classic-Ring S-reduction curve;
- :func:`fig11_space_curve` -- DR starting-level sweep;
- :func:`fig13_space_grid` -- NS's Ly-Sx exploration grid;
- :func:`table1_rows` -- the metadata bit budget;
- :func:`overheads` -- section VIII-H's storage overheads.

All default to the paper's 24-level geometry and accept ``levels`` for
scaled variants.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.space import overhead_report, space_table, utilization_table
from repro.core import schemes
from repro.oram.metadata import summarize, table1


def fig8_space(levels: int = 24) -> List[Dict[str, object]]:
    """Fig. 8a: normalized space demand of the five main schemes."""
    return space_table(schemes.main_schemes(levels))


def fig8_utilization(levels: int = 24) -> List[Dict[str, object]]:
    """Fig. 8b: space utilization of the five main schemes."""
    return utilization_table(schemes.main_schemes(levels))


def fig4_space_curve(
    levels: int = 24, reduce_by: int = 3, max_bottom: int = 7
) -> List[Dict[str, object]]:
    """Fig. 4 (top): classic Ring ORAM, S shrunk for the last x levels."""
    base = schemes.classic_ring(levels)
    rows = [{"config": "baseline", "bottom_levels": 0, "space_norm": 1.0}]
    for x in range(1, max_bottom + 1):
        cfg = schemes.ring_s_reduced(levels, bottom=x, reduce_by=reduce_by)
        rows.append({
            "config": f"L-{x}",
            "bottom_levels": x,
            "space_norm": cfg.tree_bytes / base.tree_bytes,
        })
    return rows


def fig11_space_curve(
    levels: int = 24, max_bottom: int = 6
) -> List[Dict[str, object]]:
    """Fig. 11 (space side): DR applied from level (L - x) downward."""
    base = schemes.baseline_cb(levels)
    rows = []
    for x in range(1, max_bottom + 1):
        cfg = schemes.dr_scheme(levels, bottom=x)
        rows.append({
            "config": f"DR-L{levels - x}",
            "bottom_levels": x,
            "space_norm": cfg.tree_bytes / base.tree_bytes,
            "utilization": cfg.space_utilization,
        })
    return rows


def fig13_space_grid(
    levels: int = 24, max_y: int = 3, max_x: int = 3
) -> List[Dict[str, object]]:
    """Fig. 13 (space side): the Ly-Sx grid over the CB baseline."""
    base = schemes.baseline_cb(levels)
    rows = []
    for y in range(1, max_y + 1):
        for x in range(1, max_x + 1):
            cfg = schemes.ns_scheme(levels, bottom=y, reduce_by=x)
            rows.append({
                "config": f"L{y}-S{x}",
                "bottom_levels": y,
                "s_reduction": x,
                "space_norm": cfg.tree_bytes / base.tree_bytes,
            })
    return rows


def table1_rows(levels: int = 24) -> List[Dict[str, object]]:
    """Table I as rows (field, category, ring bits, AB bits)."""
    cfg = schemes.ab_scheme(levels)
    rows = []
    for name, row in table1(cfg).items():
        rows.append({
            "field": name,
            "category": row["category"],
            "ring_bits": row["ring_bits"],
            "ab_bits": row["ab_bits"],
            "function": row["function"],
        })
    s = summarize(cfg)
    rows.append({
        "field": "TOTAL bytes",
        "category": "",
        "ring_bits": s["ring_bytes"],
        "ab_bits": s["ab_bytes"],
        "function": "per-bucket metadata record",
    })
    return rows


def overheads(levels: int = 24) -> Dict[str, object]:
    """Section VIII-H's storage overheads for the AB scheme."""
    return overhead_report(schemes.ab_scheme(levels))
