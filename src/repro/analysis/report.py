"""Plain-text table rendering.

The benchmarks regenerate the paper's tables and figures as text; this
module provides the one formatter they share so every figure prints in
a uniform, diff-friendly style.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def render_mapping_table(
    rows: Sequence[Mapping[str, Cell]],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render dict rows; headers default to the first row's keys."""
    rows = list(rows)
    if not rows:
        return title or "(empty table)"
    cols = list(headers) if headers else list(rows[0].keys())
    return render_table(
        cols,
        [[row.get(c) for c in cols] for row in rows],
        title=title,
        precision=precision,
    )


def render_bars(
    values: Mapping[str, float],
    width: int = 40,
    title: Optional[str] = None,
    precision: int = 3,
    reference: Optional[float] = None,
) -> str:
    """Render a horizontal ASCII bar chart (the paper's bar figures).

    Bars scale to the largest value; ``reference`` (e.g. 1.0 for
    normalized metrics) draws a ``|`` marker at that value's position.
    """
    values = dict(values)
    if not values:
        return title or "(no data)"
    vmax = max(values.values())
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(k) for k in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    ref_pos = None
    if reference is not None and reference <= vmax:
        ref_pos = int(round(width * reference / vmax))
    for key, val in values.items():
        n = int(round(width * max(0.0, val) / vmax))
        bar = "#" * n + " " * (width - n)
        if ref_pos is not None and 0 <= ref_pos < len(bar):
            bar = bar[:ref_pos] + "|" + bar[ref_pos + 1:]
        lines.append(f"{key.ljust(label_w)}  {bar}  {format_cell(val, precision)}")
    return "\n".join(lines)


def render_series(
    x_label: str,
    series: Mapping[str, Mapping[object, Cell]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render {series name -> {x -> y}} with one column per series."""
    xs: List[object] = []
    for vals in series.values():
        for x in vals:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series.keys())
    rows = [[x] + [series[s].get(x) for s in series] for x in xs]
    return render_table(headers, rows, title=title, precision=precision)
