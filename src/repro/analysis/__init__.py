"""Analyses over ORAM configurations and simulation runs.

- :mod:`repro.analysis.space` -- closed-form space math (tree bytes,
  normalized space demand, utilization, metadata/on-chip overheads).
  These are exact at the paper's 24-level geometry.
- :mod:`repro.analysis.deadblocks` -- observers measuring dead-block
  populations over time/levels and dead-block lifetimes (Figs. 2, 3, 12).
- :mod:`repro.analysis.stash_stats` -- stash occupancy distributions
  (sizing the stash and the background-eviction threshold).
- :mod:`repro.analysis.figures` -- the paper's analytic figures as a
  library API (instant, no simulation).
- :mod:`repro.analysis.stattests` -- statistical tests backing the
  security claims (chi-square uniformity, binomial CIs).
- :mod:`repro.analysis.report` -- plain-text table and bar rendering
  shared by the figure benchmarks and examples.
"""

from repro.analysis.space import (
    normalized_space,
    space_table,
    utilization_table,
)
from repro.analysis.deadblocks import DeadBlockCensus, LifetimeTracker
from repro.analysis.stash_stats import StashStats
from repro.analysis import figures, report, stattests

__all__ = [
    "normalized_space",
    "space_table",
    "utilization_table",
    "DeadBlockCensus",
    "LifetimeTracker",
    "StashStats",
    "figures",
    "report",
    "stattests",
]
