"""Stash occupancy statistics.

Bucket Compaction's correctness story hangs on the stash: green blocks
push real data on-chip, and background eviction (dummy accesses) must
kick in before the stash fills. This observer samples occupancy at
every online access and summarizes the distribution (mean, tail
percentiles, peak), which is what one needs to size ``stash_capacity``
and ``background_evict_threshold`` for a configuration -- and what the
background-eviction ablation benchmark sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.oram.observer import BaseObserver


class StashStats(BaseObserver):
    """Observer sampling stash occupancy once per online access."""

    def __init__(self, timeline_interval: int = 0) -> None:
        if timeline_interval < 0:
            raise ValueError("timeline_interval must be >= 0")
        self._oram = None
        self._samples: List[int] = []
        self.timeline_interval = timeline_interval
        self.timeline: List[tuple] = []

    def attach(self, oram) -> "StashStats":
        """Bind to a controller and register as its observer."""
        self._oram = oram
        oram.observers.append(self)
        return self

    def on_access_start(self, access_no: int) -> None:
        if self._oram is None:
            return
        occ = self._oram.stash.occupancy
        self._samples.append(occ)
        if self.timeline_interval and access_no % self.timeline_interval == 0:
            self.timeline.append((access_no, occ))

    # ------------------------------------------------------------- queries

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        if not self._samples:
            raise ValueError("no samples collected")
        return float(np.percentile(self._samples, q))

    def summary(self) -> Dict[str, float]:
        if not self._samples:
            raise ValueError("no samples collected")
        arr = np.asarray(self._samples)
        return {
            "samples": float(arr.size),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p90": float(np.percentile(arr, 90)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()),
        }

    def histogram(self, bins: Optional[int] = None) -> np.ndarray:
        """Occupancy histogram (index = occupancy, value = samples)."""
        if not self._samples:
            raise ValueError("no samples collected")
        arr = np.asarray(self._samples)
        length = (bins if bins is not None else int(arr.max()) + 1)
        return np.bincount(np.clip(arr, 0, length - 1), minlength=length)
