"""Closed-form space analysis.

Space demand in Ring ORAM is pure geometry: bytes = sum over levels of
(buckets at level) x (physical Z at level) x 64B. The paper's headline
numbers fall out exactly:

- DR (Z=6 for the bottom 6 of 24 levels): 75% of Baseline (25% saving);
- NS (Z=6 for the bottom 2): 81% (19% saving);
- AB (Z=6 / Z=5 split): 64.5% (~36% saving);
- utilization: Baseline 31.2% -> AB 48.5%.

These functions evaluate the same sums for arbitrary configurations and
are checked against the paper's numbers in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.oram.config import OramConfig
from repro.oram.metadata import (
    ab_metadata_fields,
    deadq_onchip_bytes,
    metadata_bytes,
    ring_metadata_fields,
)


def normalized_space(
    schemes: Sequence[OramConfig], baseline: Optional[str] = None
) -> Dict[str, float]:
    """Tree bytes of each scheme normalized to the baseline's.

    ``baseline`` defaults to the first scheme in the list.
    """
    if not schemes:
        raise ValueError("need at least one scheme")
    by_name = {cfg.name: cfg for cfg in schemes}
    base_name = baseline or schemes[0].name
    if base_name not in by_name:
        raise KeyError(f"baseline {base_name!r} not among schemes")
    base = by_name[base_name].tree_bytes
    return {cfg.name: cfg.tree_bytes / base for cfg in schemes}


def space_table(schemes: Sequence[OramConfig]) -> List[Dict[str, object]]:
    """One row per scheme: bytes, normalized bytes, saving (Fig. 8a)."""
    norm = normalized_space(schemes)
    rows = []
    for cfg in schemes:
        rows.append({
            "scheme": cfg.name,
            "tree_mib": cfg.tree_bytes / 2**20,
            "normalized": norm[cfg.name],
            "saving": 1.0 - norm[cfg.name],
        })
    return rows


def utilization_table(schemes: Sequence[OramConfig]) -> List[Dict[str, object]]:
    """One row per scheme: user data / tree size (Fig. 8b)."""
    return [
        {
            "scheme": cfg.name,
            "user_mib": cfg.user_bytes / 2**20,
            "tree_mib": cfg.tree_bytes / 2**20,
            "utilization": cfg.space_utilization,
        }
        for cfg in schemes
    ]


def level_space_profile(cfg: OramConfig) -> List[Dict[str, object]]:
    """Per-level capacity contribution (motivates bottom-level shrinking)."""
    return [
        {
            "level": lv,
            "buckets": cfg.buckets_at(lv),
            "z_total": cfg.geometry[lv].z_total,
            "bytes": cfg.buckets_at(lv) * cfg.geometry[lv].z_total * cfg.block_bytes,
            "fraction": cfg.level_capacity_fraction(lv),
        }
        for lv in range(cfg.levels)
    ]


def overhead_report(cfg: OramConfig) -> Dict[str, object]:
    """The paper's section VIII-H storage overheads for ``cfg``.

    On-chip: DeadQ bytes (about 21KB at the paper's setting of six
    1000-entry queues). Memory: per-bucket metadata for Ring vs AB and
    whether the AB record still fits one 64B metadata block.
    """
    ring_b = metadata_bytes(ring_metadata_fields(cfg))
    ab_b = metadata_bytes(ab_metadata_fields(cfg))
    return {
        "deadq_onchip_bytes": deadq_onchip_bytes(cfg),
        "deadq_levels": list(cfg.deadq_levels),
        "deadq_capacity": cfg.deadq_capacity,
        "ring_metadata_bytes": ring_b,
        "ab_metadata_bytes": ab_b,
        "ab_extra_metadata_bytes": ab_b - ring_b,
        "ab_metadata_fits_block": ab_b <= cfg.block_bytes,
        "metadata_tree_bytes": cfg.n_buckets * cfg.block_bytes,
    }
