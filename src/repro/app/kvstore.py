"""An oblivious key-value store on top of AB-ORAM.

The store maps arbitrary byte keys to arbitrary-length byte values.
Values are chunked over fixed 64B ORAM blocks; a client-side directory
(key -> chain of block ids) and a free-list play the role the position
map plays for the ORAM itself -- trusted client state. Every chunk
touch is a full oblivious access, so the server-visible trace reveals
only *how many* blocks an operation touched, never which key or what
data.

Because chain length would otherwise leak value sizes, the store can
pad every chain to a multiple of ``pad_chunks`` blocks (reads and
writes then touch identical counts for same-bucket sizes); with
``pad_chunks=1`` padding is off and the trade-off is the user's.

Typical use::

    from repro.app.kvstore import ObliviousKV

    kv = ObliviousKV.create(scheme="ab", levels=10, seed=7)
    kv.put(b"alice", b"large secret value ..." * 10)
    assert kv.get(b"alice").startswith(b"large secret")
    kv.delete(b"alice")
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.core import schemes as schemes_mod
from repro.core.ab_oram import build_oram
from repro.oram.datastore import EncryptedTreeStore
from repro.oram.ring import RingOram

# Each chunk spends 4 bytes on a payload-length header.
_HEADER = struct.Struct("<I")


class KVFullError(RuntimeError):
    """The store ran out of free ORAM blocks."""


class ObliviousKV:
    """Byte-key / byte-value store over one ORAM instance."""

    def __init__(self, oram: RingOram, pad_chunks: int = 1) -> None:
        if pad_chunks < 1:
            raise ValueError("pad_chunks must be >= 1")
        self.oram = oram
        self.pad_chunks = pad_chunks
        self.chunk_payload = oram.cfg.block_bytes - _HEADER.size
        self._directory: Dict[bytes, List[int]] = {}
        self._free: List[int] = list(range(oram.cfg.n_real_blocks - 1, -1, -1))
        self.puts = 0
        self.gets = 0
        self.deletes = 0

    # ---------------------------------------------------------- constructors

    @classmethod
    def create(
        cls,
        scheme: str = "ab",
        levels: int = 10,
        seed: int = 0,
        encrypted: bool = True,
        master_key: bytes = b"oblivious-kv default key",
        pad_chunks: int = 1,
    ) -> "ObliviousKV":
        """Build a store over a fresh ORAM of the named paper scheme.

        ``encrypted=True`` routes payloads through the sealed memory
        image (ChaCha20 + MAC + Merkle tree); otherwise payloads live
        in a plaintext dict (faster, for experiments).
        """
        cfg = schemes_mod.by_name(scheme, levels)
        datastore = (
            EncryptedTreeStore(cfg, master_key, seed=seed)
            if encrypted else None
        )
        oram = build_oram(cfg, seed=seed, store_data=not encrypted,
                          datastore=datastore)
        return cls(oram, pad_chunks=pad_chunks)

    # -------------------------------------------------------------- helpers

    def _chunks_for(self, length: int) -> int:
        raw = max(1, -(-length // self.chunk_payload))
        # Round the chain up to the padding quantum to mask sizes.
        return -(-raw // self.pad_chunks) * self.pad_chunks

    def _write_block(self, block: int, payload: bytes) -> None:
        framed = _HEADER.pack(len(payload)) + payload
        self.oram.access(block, write=True, value=framed)

    def _read_block(self, block: int) -> bytes:
        raw = self.oram.access(block, write=False)
        if raw is None:
            return b""
        (length,) = _HEADER.unpack(bytes(raw[: _HEADER.size]))
        return bytes(raw[_HEADER.size: _HEADER.size + length])

    @staticmethod
    def _normalize(key) -> bytes:
        if isinstance(key, str):
            return key.encode()
        if isinstance(key, (bytes, bytearray)):
            return bytes(key)
        raise TypeError(f"keys must be str or bytes, got {type(key)}")

    # ------------------------------------------------------------ operations

    def put(self, key, value: bytes) -> None:
        """Store ``value`` under ``key`` (overwrites atomically)."""
        key = self._normalize(key)
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"values must be bytes, got {type(value)}")
        value = bytes(value)
        need = self._chunks_for(len(value))
        chain = self._directory.get(key, [])
        # Grow or shrink the chain to the required length.
        while len(chain) < need:
            if not self._free:
                raise KVFullError(
                    f"no free blocks ({len(self._directory)} keys stored)"
                )
            chain.append(self._free.pop())
        while len(chain) > need:
            self._free.append(chain.pop())
        for i, block in enumerate(chain):
            piece = value[i * self.chunk_payload:(i + 1) * self.chunk_payload]
            self._write_block(block, piece)
        self._directory[key] = chain
        self.puts += 1

    def get(self, key) -> Optional[bytes]:
        """Fetch the value under ``key`` (None if absent)."""
        key = self._normalize(key)
        chain = self._directory.get(key)
        if chain is None:
            return None
        self.gets += 1
        return b"".join(self._read_block(block) for block in chain)

    def resident_value(self, key) -> "Tuple[bool, Optional[bytes]]":
        """Answer a read *without* an oblivious access, if possible.

        Returns ``(resident, value)``. ``resident=True`` means the
        answer is authoritative without touching the server: the key is
        absent (the client-side directory knows), or every chunk of its
        chain is on-chip right now (stash payload cache). ``(False,
        None)`` means serving this read requires real accesses -- a
        degraded-mode server must defer or fail it.
        """
        chain = self._directory.get(self._normalize(key))
        if chain is None:
            return True, None
        pieces: List[bytes] = []
        for block in chain:
            raw = self.oram.peek_payload(block)
            if raw is None:
                return False, None
            (length,) = _HEADER.unpack(bytes(raw[: _HEADER.size]))
            pieces.append(bytes(raw[_HEADER.size: _HEADER.size + length]))
        return True, b"".join(pieces)

    def chain_of(self, key) -> Optional[List[int]]:
        """Client-side chain lookup (never touches the server).

        The serving scheduler uses this to reason about chain lengths
        (e.g. coalescing multi-chunk reads) without issuing accesses.
        """
        chain = self._directory.get(self._normalize(key))
        return list(chain) if chain is not None else None

    def preload(self, items) -> int:
        """Bulk-load ``(key, value)`` pairs without oblivious accesses.

        Serving benchmarks start from a populated store; populating a
        million-key store through one full ORAM access per chunk would
        dwarf the measured workload. Only the plaintext payload path
        supports this (the sealed path would need per-slot re-sealing);
        the tree placement itself already happened in ``warm_fill``.
        Returns the number of ORAM blocks consumed.
        """
        used = 0
        for key, value in items:
            key = self._normalize(key)
            if not isinstance(value, (bytes, bytearray)):
                raise TypeError(f"values must be bytes, got {type(value)}")
            value = bytes(value)
            if key in self._directory:
                raise ValueError(f"preload of existing key {key!r}")
            need = self._chunks_for(len(value))
            if need > len(self._free):
                raise KVFullError(
                    f"no free blocks ({len(self._directory)} keys stored)"
                )
            chain = [self._free.pop() for _ in range(need)]
            for i, block in enumerate(chain):
                piece = value[
                    i * self.chunk_payload:(i + 1) * self.chunk_payload
                ]
                self.oram.preload_value(
                    block, _HEADER.pack(len(piece)) + piece
                )
            self._directory[key] = chain
            used += need
        return used

    def delete(self, key) -> bool:
        """Remove ``key``; frees its blocks. Returns True if it existed."""
        key = self._normalize(key)
        chain = self._directory.pop(key, None)
        if chain is None:
            return False
        # Overwrite freed chunks so stale plaintext never lingers in
        # the stash payloads, then return them to the free list.
        for block in chain:
            self._write_block(block, b"")
            self._free.append(block)
        self.deletes += 1
        return True

    def __contains__(self, key) -> bool:
        return self._normalize(key) in self._directory

    def __len__(self) -> int:
        return len(self._directory)

    def keys(self) -> List[bytes]:
        """Client-side key listing (never touches the server)."""
        return list(self._directory)

    # ------------------------------------------------------------- capacity

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.oram.cfg.n_real_blocks - len(self._free)

    def stats(self) -> Dict[str, object]:
        return {
            "keys": len(self._directory),
            "used_blocks": self.used_blocks,
            "free_blocks": self.free_blocks,
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "oram_accesses": self.oram.online_accesses,
            "scheme": self.oram.cfg.name,
        }
