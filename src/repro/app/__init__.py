"""Application layer: what a downstream user builds on top of AB-ORAM.

- :mod:`repro.app.kvstore` -- an oblivious key-value store: arbitrary
  byte values chunked over 64B ORAM blocks, with a client-side
  directory and free-list, optional chain padding to hide value sizes,
  and the full AB-ORAM stack (including the encrypted tree store)
  underneath.
"""

from repro.app.kvstore import ObliviousKV, KVFullError

__all__ = ["ObliviousKV", "KVFullError"]
