"""Per-block authentication tags.

Each sealed block carries a MAC binding its ciphertext to its physical
slot address and write version, so the memory cannot substitute one
ciphertext for another (spatial splicing) or an old one for a new one
(the Merkle tree in :mod:`repro.crypto.integrity` then protects the
versions themselves). HMAC-SHA256 comes from the standard library; the
tag is truncated to 8 bytes, matching the budgets hardware integrity
engines use.
"""

from __future__ import annotations

import hashlib
import hmac
import struct


class AuthenticationError(Exception):
    """A block failed MAC verification (tampered or replayed)."""


class BlockAuthenticator:
    """Keyed MAC over (slot address, version, ciphertext)."""

    TAG_BYTES = 8

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("authentication key must be >= 16 bytes")
        self._key = key

    def tag(self, addr: int, version: int, ciphertext: bytes) -> bytes:
        """Compute the truncated tag for one sealed block."""
        if addr < 0 or version < 0:
            raise ValueError("addr and version must be non-negative")
        msg = struct.pack("<QQ", addr, version) + ciphertext
        digest = hmac.new(self._key, msg, hashlib.sha256).digest()
        return digest[: self.TAG_BYTES]

    def verify(self, addr: int, version: int, ciphertext: bytes,
               tag: bytes) -> None:
        """Raise :class:`AuthenticationError` unless the tag matches."""
        expect = self.tag(addr, version, ciphertext)
        if not hmac.compare_digest(expect, tag):
            raise AuthenticationError(
                f"MAC mismatch at addr {addr:#x} version {version}"
            )
