"""Merkle integrity tree over the ORAM tree's buckets.

Per-block MACs stop splicing, but not *replay*: memory could return a
stale (ciphertext, tag, version) triple that once was valid. The
classic secure-processor fix -- and the one ORAM hardware proposals
adopt, since the ORAM tree shape conveniently matches -- is a Merkle
tree over the buckets:

    digest(b) = H(content_digest(b) || digest(left(b)) || digest(right(b)))

with the root digest pinned on-chip. ``content_digest`` covers the
bucket's slot tags and versions, so accepting any stale slot requires
forging a hash chain up to the root.

Updates and verification both touch only one root-to-leaf path, which
is exactly the set of buckets an ORAM operation touches anyway.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from repro.oram import tree as tree_mod

_EMPTY = bytes(32)


class IntegrityError(Exception):
    """A bucket digest or the root failed verification (replay?).

    ``bucket`` localizes the failure when possible: the bucket whose
    digest or content mismatched, or ``None`` when only the root
    comparison failed (the stale bucket cannot be identified -- the
    signature of a consistent-rehash replay).
    """

    def __init__(self, message: str, bucket: Optional[int] = None) -> None:
        super().__init__(message)
        self.bucket = bucket


class BucketMerkleTree:
    """Digest-per-bucket Merkle tree with an on-chip root copy."""

    DIGEST_BYTES = 32

    def __init__(self, levels: int) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = levels
        self.n_buckets = (1 << levels) - 1
        self._content: List[bytes] = [_EMPTY] * self.n_buckets
        self._digest: List[bytes] = [_EMPTY] * self.n_buckets
        # Initialize bottom-up so an untouched tree verifies.
        for b in range(self.n_buckets - 1, -1, -1):
            self._digest[b] = self._combine(b)
        self._root_onchip = self._digest[0]
        self.updates = 0
        self.verifications = 0

    def _children(self, bucket: int) -> (int, int):
        left, right = tree_mod.children_of(bucket)
        if left >= self.n_buckets:
            return -1, -1
        return left, right

    def _combine(self, bucket: int) -> bytes:
        left, right = self._children(bucket)
        h = hashlib.sha256()
        h.update(self._content[bucket])
        h.update(self._digest[left] if left >= 0 else _EMPTY)
        h.update(self._digest[right] if right >= 0 else _EMPTY)
        return h.digest()

    # -------------------------------------------------------------- update

    def update_bucket(self, bucket: int, content_digest: bytes) -> None:
        """Set a bucket's content digest and rehash its path to the root."""
        if not 0 <= bucket < self.n_buckets:
            raise ValueError(f"bucket {bucket} out of range")
        if len(content_digest) != self.DIGEST_BYTES:
            raise ValueError("content digest must be 32 bytes")
        self._content[bucket] = content_digest
        b = bucket
        while True:
            self._digest[b] = self._combine(b)
            if b == 0:
                break
            b = tree_mod.parent_of(b)
        self._root_onchip = self._digest[0]
        self.updates += 1

    # -------------------------------------------------------------- verify

    def verify_path(self, leaf: int) -> None:
        """Check one path's hash chain against the on-chip root."""
        path = tree_mod.path_buckets(leaf, self.levels)
        self.verifications += 1
        for b in path:
            if self._digest[b] != self._combine(b):
                raise IntegrityError(f"digest mismatch at bucket {b}", bucket=b)
        if self._digest[0] != self._root_onchip:
            raise IntegrityError("root digest does not match on-chip copy")

    def verify_bucket(
        self, bucket: int, content_digest: Optional[bytes] = None
    ) -> None:
        """Check one bucket's digest (and its ancestors) to the root.

        When ``content_digest`` is given, it is the verifier's own
        recomputation of the bucket's content (from the untrusted tags
        and versions it just fetched); a mismatch against the stored
        content digest catches dropped writes the hash chain alone
        would miss.
        """
        if not 0 <= bucket < self.n_buckets:
            raise ValueError(f"bucket {bucket} out of range")
        self.verifications += 1
        if content_digest is not None and content_digest != self._content[bucket]:
            raise IntegrityError(
                f"content digest mismatch at bucket {bucket}", bucket=bucket
            )
        b = bucket
        while True:
            if self._digest[b] != self._combine(b):
                raise IntegrityError(f"digest mismatch at bucket {b}", bucket=b)
            if b == 0:
                break
            b = tree_mod.parent_of(b)
        if self._digest[0] != self._root_onchip:
            raise IntegrityError("root digest does not match on-chip copy")

    # --------------------------------------------------------- tamper hooks

    def stored_content(self, bucket: int) -> bytes:
        return self._content[bucket]

    def tamper_content(self, bucket: int, content_digest: bytes) -> None:
        """Overwrite a content digest WITHOUT rehashing (attack model)."""
        self._content[bucket] = content_digest

    def tamper_digest(self, bucket: int, digest: bytes) -> None:
        """Overwrite a stored digest WITHOUT fixing ancestors (attack)."""
        self._digest[bucket] = digest

    def tamper_rehash(self, bucket: int) -> None:
        """Recompute a path's digests consistently but WITHOUT updating
        the on-chip root copy -- the strongest replay attack an
        off-chip adversary can mount. Verification must still fail at
        the root comparison."""
        b = bucket
        while True:
            self._digest[b] = self._combine(b)
            if b == 0:
                break
            b = tree_mod.parent_of(b)

    @property
    def root(self) -> bytes:
        return self._root_onchip
