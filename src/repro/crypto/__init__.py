"""The secure-processor crypto boundary.

The paper's threat model (section II) assumes program data lives in
memory as ciphertext, encrypted and integrity-protected by an on-chip
secure engine; only access *patterns* remain observable, which is what
the ORAM then hides. This package implements that boundary:

- :mod:`repro.crypto.chacha` -- the ChaCha20 stream cipher (RFC 8439),
  implemented from scratch and validated against the RFC test vectors;
- :mod:`repro.crypto.auth` -- keyed block authentication (HMAC-SHA256
  tags with domain separation per slot address and version);
- :mod:`repro.crypto.engine` -- the per-block seal/open engine
  combining both, with version-based nonces;
- :mod:`repro.crypto.integrity` -- a Merkle tree over the ORAM tree's
  buckets providing freshness (anti-replay), with the root held
  on-chip.

The timing simulator does not route payload bytes (the paper's schemes
never change crypto cost), but the functional controller can: see
``EncryptedTreeStore`` in :mod:`repro.oram.datastore`.
"""

from repro.crypto.chacha import ChaCha20, chacha20_xor
from repro.crypto.auth import BlockAuthenticator, AuthenticationError
from repro.crypto.engine import SecureBlockEngine
from repro.crypto.integrity import BucketMerkleTree, IntegrityError

__all__ = [
    "ChaCha20",
    "chacha20_xor",
    "BlockAuthenticator",
    "AuthenticationError",
    "SecureBlockEngine",
    "BucketMerkleTree",
    "IntegrityError",
]
