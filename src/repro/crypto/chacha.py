"""ChaCha20 stream cipher (RFC 8439), from scratch.

The secure engine needs a fast(ish), well-specified stream cipher to
encrypt 64B blocks before they leave the processor. ChaCha20 is a good
fit: one cipher block is exactly 64 bytes, the construction is pure
ARX (add/rotate/xor) so a dependency-free implementation stays short,
and RFC 8439 ships official test vectors the test suite checks this
code against.

Only encryption/keystream generation is provided (stream ciphers are
symmetric: decryption is the same XOR).
"""

from __future__ import annotations

import struct
from typing import List

_MASK = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _rotl(v: int, n: int) -> int:
    v &= _MASK
    return ((v << n) | (v >> (32 - n))) & _MASK


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 7)


class ChaCha20:
    """ChaCha20 keystream generator for one (key, nonce) pair."""

    KEY_BYTES = 32
    NONCE_BYTES = 12
    BLOCK_BYTES = 64

    def __init__(self, key: bytes, nonce: bytes) -> None:
        if len(key) != self.KEY_BYTES:
            raise ValueError(f"key must be {self.KEY_BYTES} bytes, got {len(key)}")
        if len(nonce) != self.NONCE_BYTES:
            raise ValueError(
                f"nonce must be {self.NONCE_BYTES} bytes, got {len(nonce)}"
            )
        self._key_words = struct.unpack("<8I", key)
        self._nonce_words = struct.unpack("<3I", nonce)

    def block(self, counter: int) -> bytes:
        """The 64-byte keystream block at ``counter`` (RFC 8439 2.3)."""
        if not 0 <= counter <= _MASK:
            raise ValueError(f"counter out of range: {counter}")
        state = list(_CONSTANTS) + list(self._key_words) + [counter] + list(
            self._nonce_words
        )
        working = list(state)
        for _ in range(10):  # 20 rounds: 10 column+diagonal double rounds
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        out = [(w + s) & _MASK for w, s in zip(working, state)]
        return struct.pack("<16I", *out)

    def keystream(self, length: int, counter: int = 0) -> bytes:
        """``length`` keystream bytes starting at block ``counter``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        chunks = []
        produced = 0
        while produced < length:
            chunks.append(self.block(counter))
            counter += 1
            produced += self.BLOCK_BYTES
        return b"".join(chunks)[:length]

    def xor(self, data: bytes, counter: int = 0) -> bytes:
        """Encrypt/decrypt ``data`` (XOR with the keystream)."""
        ks = self.keystream(len(data), counter)
        return bytes(a ^ b for a, b in zip(data, ks))


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 0) -> bytes:
    """One-shot ChaCha20 encryption/decryption."""
    return ChaCha20(key, nonce).xor(data, counter)
