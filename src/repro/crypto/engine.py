"""The per-block seal/open engine.

``seal`` turns a 64B plaintext block into (ciphertext, tag) for one
physical slot; ``open`` reverses and authenticates it. The nonce is
derived from the slot address and a per-write version counter, so the
same plaintext written twice (or to two places) produces unrelated
ciphertexts -- the property that makes real and dummy blocks
indistinguishable on the memory bus, which Ring ORAM's security
argument relies on.

Key separation: independent subkeys for encryption and authentication
are derived from the master key with SHA256 domain tags.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Tuple

from repro.crypto.auth import BlockAuthenticator
from repro.crypto.chacha import ChaCha20


class SecureBlockEngine:
    """Seals/opens fixed-size blocks keyed by (slot address, version)."""

    BLOCK_BYTES = 64

    def __init__(self, master_key: bytes) -> None:
        if len(master_key) < 16:
            raise ValueError("master key must be >= 16 bytes")
        self._enc_key = hashlib.sha256(b"repro/enc|" + master_key).digest()
        self._auth = BlockAuthenticator(
            hashlib.sha256(b"repro/mac|" + master_key).digest()
        )

    @property
    def tag_bytes(self) -> int:
        return self._auth.TAG_BYTES

    def _nonce(self, addr: int, version: int) -> bytes:
        # 12-byte nonce: low 8 bytes of address + low 4 of version; the
        # version also feeds the MAC, so wrap-around cannot alias.
        return struct.pack("<QI", addr & (2**64 - 1), version & (2**32 - 1))

    def seal(self, addr: int, version: int, plaintext: bytes) -> Tuple[bytes, bytes]:
        """Encrypt + authenticate one block; returns (ciphertext, tag)."""
        if len(plaintext) != self.BLOCK_BYTES:
            raise ValueError(
                f"plaintext must be {self.BLOCK_BYTES} bytes, got {len(plaintext)}"
            )
        cipher = ChaCha20(self._enc_key, self._nonce(addr, version))
        ciphertext = cipher.xor(plaintext)
        return ciphertext, self._auth.tag(addr, version, ciphertext)

    def open(self, addr: int, version: int, ciphertext: bytes,
             tag: bytes) -> bytes:
        """Authenticate + decrypt one block (raises on tampering)."""
        if len(ciphertext) != self.BLOCK_BYTES:
            raise ValueError(
                f"ciphertext must be {self.BLOCK_BYTES} bytes, got {len(ciphertext)}"
            )
        self._auth.verify(addr, version, ciphertext, tag)
        cipher = ChaCha20(self._enc_key, self._nonce(addr, version))
        return cipher.xor(ciphertext)
