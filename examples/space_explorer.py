#!/usr/bin/env python
"""Space explorer: size an AB-ORAM deployment before building it.

The space math of Ring ORAM is closed-form, so capacity planning needs
no simulation. This example answers the questions an integrator would
ask: how much memory does each scheme need for a given protected-data
size, where does the capacity live across tree levels, and what do the
metadata and on-chip structures add?

Run:  python examples/space_explorer.py [--levels 24] [--user-gib 2.5]
"""

import argparse

from repro.analysis.report import render_mapping_table
from repro.analysis.space import (
    level_space_profile,
    overhead_report,
    space_table,
    utilization_table,
)
from repro.core import schemes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", type=int, default=24,
                        help="tree levels (default: the paper's 24)")
    args = parser.parse_args()

    cfgs = schemes.main_schemes(args.levels)

    print(render_mapping_table(
        space_table(cfgs),
        title=f"Space demand by scheme (L={args.levels})",
    ))
    print()
    print(render_mapping_table(
        utilization_table(cfgs),
        title="Space utilization (user data / tree size)",
    ))
    print()

    # Where the capacity lives: the bottom levels dominate, which is
    # exactly why AB-ORAM shrinks them.
    ab = schemes.ab_scheme(args.levels)
    profile = level_space_profile(ab)
    interesting = [r for r in profile if r["fraction"] > 0.005]
    print(render_mapping_table(
        interesting,
        title=(f"AB capacity by level (levels holding >0.5%; the top "
               f"{args.levels - len(interesting)} levels hold the rest)"),
    ))
    print()

    over = overhead_report(ab)
    print(render_mapping_table(
        [{
            "deadq_onchip_KiB": over["deadq_onchip_bytes"] / 1024,
            "ab_metadata_B_per_bucket": over["ab_metadata_bytes"],
            "metadata_fits_64B_block": over["ab_metadata_fits_block"],
            "metadata_tree_MiB": over["metadata_tree_bytes"] / 2**20,
        }],
        title="AB-ORAM overheads (paper section VIII-H)",
    ))
    print()

    # Headline: what the paper's Fig. 8 promises at this scale.
    base = cfgs[0]
    saving = 1 - ab.tree_bytes / base.tree_bytes
    print(f"Protecting {base.user_bytes / 2**30:.2f} GiB of user data:")
    print(f"  Baseline (Ring ORAM + CB) tree: {base.tree_bytes / 2**30:.2f} GiB")
    print(f"  AB-ORAM tree:                   {ab.tree_bytes / 2**30:.2f} GiB"
          f"  ({saving:.1%} saved)")


if __name__ == "__main__":
    main()
