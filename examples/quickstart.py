#!/usr/bin/env python
"""Quickstart: an AB-ORAM instance as an oblivious block device.

Builds the paper's AB scheme on a small tree, writes and reads a few
blocks through the full Ring ORAM protocol (readPath / evictPath /
earlyReshuffle / remote allocation), and prints the space and runtime
reports.

Run:  python examples/quickstart.py [--levels 12] [--scheme ab]
"""

import argparse

from repro import AbOram
from repro.analysis.report import render_mapping_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", type=int, default=12,
                        help="ORAM tree levels (default 12)")
    parser.add_argument("--scheme", default="ab",
                        choices=["baseline", "ir", "dr", "ns", "ab", "ring"],
                        help="paper scheme to instantiate (default ab)")
    parser.add_argument("--accesses", type=int, default=500,
                        help="random accesses to drive after the demo")
    args = parser.parse_args()

    oram = AbOram.from_scheme(args.scheme, levels=args.levels, seed=1,
                              store_data=True, warm=True)
    print(oram.cfg.describe())
    print()

    # -- the block-device API: every write/read is one oblivious access.
    oram.write(0, b"attack at dawn")
    oram.write(1, {"any": "python object"})
    oram.write(2, 42)
    assert oram.read(0) == b"attack at dawn"
    assert oram.read(1) == {"any": "python object"}
    assert oram.read(2) == 42
    print("roundtrip of 3 blocks: ok")

    # -- drive random traffic so the maintenance machinery has work.
    import random
    rng = random.Random(7)
    for i in range(args.accesses):
        block = rng.randrange(oram.n_blocks)
        if rng.random() < 0.5:
            oram.write(block, i)
        else:
            oram.read(block)
    oram.check()  # full protocol invariant check
    print(f"{args.accesses} random accesses: invariants hold")
    print()

    space = oram.space_report()
    print(render_mapping_table([space], title="Space report"))
    print()

    run = oram.runtime_report()
    summary = {
        "online_accesses": run["online_accesses"],
        "evictions": run["evictions"],
        "stash_peak": run["stash_peak"],
        "dead_blocks_now": run["dead_blocks"],
    }
    if "remote" in run:
        summary["extension_ratio"] = round(
            run["remote"]["extension_ratio"], 3
        )
        summary["remote_reads"] = run["remote"]["remote_reads"]
    print(render_mapping_table([summary], title="Runtime report"))


if __name__ == "__main__":
    main()
