#!/usr/bin/env python
"""Co-runner capacity study: what the saved gigabytes buy.

The paper's section III-D motivates space reduction with memory
contention: "reducing space demand can effectively make better use of
main memory resource". This example quantifies that for a concrete
machine: given a total memory budget, a protected working set, and a
co-running application with a miss-ratio curve, how much of the
co-runner's working set still fits in DRAM under each ORAM scheme --
and what its slowdown from swapping would be.

The co-runner model is the classic working-set hyperbola: hit rate of
a cache of size ``s`` over working set ``W`` follows s/(s + W/4)
(a smoothed LRU curve); a miss costs an NVMe fault (~80us) instead of
a DRAM access (~80ns).

Run:  python examples/corunner_capacity.py [--memory-gib 16]
"""

import argparse

from repro.analysis.report import render_bars, render_mapping_table
from repro.core import schemes

FAULT_NS = 80_000.0
DRAM_NS = 80.0


def corunner_slowdown(resident_gib: float, working_set_gib: float) -> float:
    """Execution-time multiplier of the co-runner given resident memory."""
    if resident_gib <= 0:
        return float("inf")
    hit = resident_gib / (resident_gib + working_set_gib / 4.0)
    hit = min(hit, 1.0)
    avg = hit * DRAM_NS + (1 - hit) * FAULT_NS
    return avg / DRAM_NS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--memory-gib", type=float, default=16.0,
                        help="total system memory (default 16 GiB)")
    parser.add_argument("--corunner-ws-gib", type=float, default=12.0,
                        help="co-runner working set (default 12 GiB)")
    parser.add_argument("--levels", type=int, default=24)
    args = parser.parse_args()

    cfgs = schemes.main_schemes(args.levels)
    rows = []
    slowdowns = {}
    for cfg in cfgs:
        tree_gib = cfg.tree_bytes / 2**30
        resident = args.memory_gib - tree_gib
        slow = corunner_slowdown(resident, args.corunner_ws_gib)
        slowdowns[cfg.name] = slow
        rows.append({
            "scheme": cfg.name,
            "oram_tree_gib": tree_gib,
            "corunner_resident_gib": resident,
            "corunner_slowdown": slow,
        })
    print(render_mapping_table(
        rows,
        title=(f"{args.memory_gib:.0f} GiB machine, "
               f"{cfgs[0].user_bytes / 2**30:.1f} GiB protected data, "
               f"co-runner WS {args.corunner_ws_gib:.0f} GiB"),
    ))
    print()
    print(render_bars(
        slowdowns,
        title="Co-runner slowdown by ORAM scheme (lower is better)",
        reference=slowdowns.get("AB"),
    ))
    print()
    base = slowdowns["Baseline"]
    ab = slowdowns["AB"]
    print(f"AB-ORAM frees {rows[0]['oram_tree_gib'] - rows[-1]['oram_tree_gib']:.1f} GiB "
          f"for the co-runner: its slowdown drops {base:.1f}x -> {ab:.1f}x.")


if __name__ == "__main__":
    main()
