#!/usr/bin/env python
"""Attacker analysis: verify AB-ORAM leaks nothing beyond Ring ORAM.

Reproduces the paper's section VI-C experiment interactively: an
attacker watches every readPath (including AB's cleartext remote
redirections) and guesses which of the L fetched blocks is real. If
the protocol is sound, the success rate is exactly 1/L -- and the
dictionary of remote mappings must not help: real blocks appear behind
remote addresses at the same rate as dummies do.

Run:  python examples/attacker_analysis.py [--levels 10] [--accesses 4000]
"""

import argparse

import numpy as np

from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.core.security import GuessingAttacker, RemoteMappingCollector


def attack(scheme: str, levels: int, accesses: int, seed: int):
    cfg = schemes.by_name(scheme, levels)
    attacker = GuessingAttacker(cfg.levels, seed=seed)
    collector = RemoteMappingCollector(band_levels=cfg.deadq_levels or None)
    oram = build_oram(cfg, seed=seed, observers=[attacker, collector])
    oram.warm_fill()
    rng = np.random.default_rng(seed + 1)
    for _ in range(accesses):
        oram.access(int(rng.integers(cfg.n_real_blocks)))
    return attacker, collector


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", type=int, default=10)
    parser.add_argument("--accesses", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rows = []
    collectors = {}
    for scheme in ("baseline", "ab"):
        attacker, collector = attack(scheme, args.levels, args.accesses,
                                     args.seed)
        collectors[scheme] = collector
        rows.append({
            "scheme": scheme,
            "guesses": attacker.guesses,
            "success_rate": attacker.success_rate,
            "expected_1_over_L": attacker.expected_rate,
            "advantage": attacker.advantage(),
        })
    print(render_mapping_table(
        rows,
        title=(f"Guessing attacker over {args.accesses} accesses "
               f"(L={args.levels}; sound protocol => success = 1/L)"),
        precision=4,
    ))
    print()

    # The dictionary check conditions on the tree level: a read's level
    # is public in every tree ORAM, real blocks concentrate near the
    # leaves, and remote-read rates vary by level -- aggregate fractions
    # therefore show a harmless Simpson's gap. The per-level comparison
    # is the real test: within a level, remote reads must be no more
    # likely to be real than local ones.
    _, dr = attack("dr", args.levels, args.accesses, args.seed)
    print(render_mapping_table(
        dr.level_rows(),
        title=("DR remote-mapping dictionary, per level: if remote slots "
               "excluded (or favoured) real blocks, the two probability "
               "columns would diverge"),
        precision=4,
    ))
    print()
    if dr.remote_reads == 0:
        print("no remote reads happened (tree too small / run too short)")
    else:
        print(f"level-weighted bias = {dr.weighted_bias():+.4f} -> knowing "
              "the remote mapping dictionary gives the attacker no usable "
              "signal.")


if __name__ == "__main__":
    main()
