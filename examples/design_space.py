#!/usr/bin/env python
"""Design-space exploration: find your own adjustable-bucket scheme.

AB-ORAM is one point in a family: pick how many bottom levels to
shrink, how far to shrink S, and how much remote extension to recover.
This example sweeps that family on a scaled tree, validates every
candidate with the configuration doctor, simulates the survivors, and
prints the Pareto frontier of (space, execution time) -- the workflow
an architect would follow to retune the scheme for a different memory
budget.

Run:  python examples/design_space.py [--levels 10] [--requests 1500]
"""

import argparse

from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.oram.config import BucketGeometry, OramConfig, bottom_range, override_levels, uniform_geometry
from repro.oram.validate import ERROR, diagnose
from repro.sim import SimConfig, simulate
from repro.traces.spec import spec_trace


def candidate(levels: int, bottom: int, s_phys: int, extension: int) -> OramConfig:
    """A custom adjustable-bucket scheme over the CB baseline."""
    band = bottom_range(levels, bottom)
    geometry = override_levels(
        uniform_geometry(levels, schemes.Z_REAL, schemes.CB_S,
                         overlap=schemes.CB_OVERLAP),
        {lv: BucketGeometry(schemes.Z_REAL, s_phys,
                            overlap=schemes.CB_OVERLAP,
                            remote_extension=extension)
         for lv in band},
    )
    return OramConfig(
        levels=levels,
        geometry=geometry,
        deadq_levels=band if extension else (),
        evict_rate=schemes.EVICT_RATE,
        treetop_levels=schemes.baseline_cb(levels).treetop_levels,
        base_z_real=schemes.Z_REAL,
        name=f"B{bottom}-S{s_phys}-r{extension}",
    )


def pareto(rows):
    """Rows not dominated in (space_norm, exec_norm)."""
    frontier = []
    for r in rows:
        dominated = any(
            o["space_norm"] <= r["space_norm"]
            and o["exec_norm"] <= r["exec_norm"]
            and (o["space_norm"], o["exec_norm"])
            != (r["space_norm"], r["exec_norm"])
            for o in rows
        )
        if not dominated:
            frontier.append(r["config"])
    return frontier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", type=int, default=10)
    parser.add_argument("--requests", type=int, default=1500)
    args = parser.parse_args()

    base = schemes.baseline_cb(args.levels)
    trace = spec_trace("mcf", base.n_real_blocks, args.requests, seed=8)
    sim = SimConfig(seed=8, warmup_requests=args.requests // 3)
    base_result = simulate(base, trace, sim)

    rows = []
    rejected = []
    for bottom in (2, 4, 6):
        for s_phys in (0, 1, 2):
            for ext in (0, 2):
                cfg = candidate(args.levels, bottom, s_phys, ext)
                errors = [f for f in diagnose(cfg) if f.severity == ERROR]
                if errors:
                    rejected.append((cfg.name, errors[0].code))
                    continue
                r = simulate(cfg, trace, sim)
                rows.append({
                    "config": cfg.name,
                    "space_norm": cfg.tree_bytes / base.tree_bytes,
                    "exec_norm": r.exec_ns / base_result.exec_ns,
                    "ext_ratio": r.extension_ratio,
                })
    rows.sort(key=lambda r: r["space_norm"])
    frontier = set(pareto(rows))
    for r in rows:
        r["pareto"] = r["config"] in frontier
    print(render_mapping_table(
        rows,
        title=(f"Adjustable-bucket design space over the CB baseline "
               f"(L={args.levels}, mcf; B=bottom levels, S=physical S, "
               "r=remote extension)"),
    ))
    print()
    if rejected:
        print("rejected by the configuration doctor:",
              ", ".join(f"{n} ({c})" for n, c in rejected))
    print("Pareto frontier:", ", ".join(sorted(frontier)))
    ab_like = [r for r in rows if r["config"] == "B6-S1-r2"]
    if ab_like:
        print(f"\nThe paper's DR point (B6-S1-r2): "
              f"{ab_like[0]['space_norm']:.3f} space at "
              f"{ab_like[0]['exec_norm']:.3f} time.")


if __name__ == "__main__":
    main()
