#!/usr/bin/env python
"""Artifact workflow: a fully replayable experiment bundle.

A reproducible experiment is three files: the exact configuration, the
exact trace, and the results. This example produces all three and
proves the loop closes -- the reloaded bundle re-runs to bit-identical
numbers, and the trace file is USIMM-compatible text that could drive
the original simulator too.

Run:  python examples/artifact_workflow.py [--outdir /tmp/ab-oram-artifact]
"""

import argparse
from pathlib import Path

from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.oram.config_io import load_config, save_config
from repro.sim import SimConfig, load_results, results_to_csv, save_results, simulate
from repro.traces.io import load_trace, save_trace
from repro.traces.spec import spec_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="/tmp/ab-oram-artifact")
    parser.add_argument("--levels", type=int, default=10)
    parser.add_argument("--requests", type=int, default=600)
    args = parser.parse_args()
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    # ---- 1. produce the bundle: config + trace + results
    cfg = schemes.ab_scheme(args.levels)
    trace = spec_trace("mcf", cfg.n_real_blocks, args.requests, seed=9)
    sim = SimConfig(seed=9, warmup_requests=args.requests // 3)
    result = simulate(cfg, trace, sim)

    save_config(cfg, outdir / "config.json")
    save_trace(trace, outdir / "trace.usimm")
    save_results({cfg.name: {trace.name: result}}, outdir / "results.json")
    results_to_csv({cfg.name: {trace.name: result}}, outdir / "results.csv")
    print(f"bundle written to {outdir}:")
    for f in sorted(outdir.iterdir()):
        print(f"  {f.name:14s} {f.stat().st_size:8d} bytes")
    print()

    # ---- 2. close the loop: reload everything and re-run
    cfg2 = load_config(outdir / "config.json")
    trace2 = load_trace(outdir / "trace.usimm", trace.name, cfg2.n_real_blocks)
    result2 = simulate(cfg2, trace2, sim)
    stored = load_results(outdir / "results.json")[cfg.name][trace.name]

    rows = [
        {"source": "original run", "exec_ns": result.exec_ns,
         "dram_reads": result.dram_reads,
         "readpath_p99_ns": result.readpath_p99_ns},
        {"source": "reloaded bundle re-run", "exec_ns": result2.exec_ns,
         "dram_reads": result2.dram_reads,
         "readpath_p99_ns": result2.readpath_p99_ns},
        {"source": "stored results.json", "exec_ns": stored.exec_ns,
         "dram_reads": stored.dram_reads,
         "readpath_p99_ns": stored.readpath_p99_ns},
    ]
    print(render_mapping_table(rows, title="Replay check"))
    # Stored results reload bit-identically; the re-run matches up to
    # the USIMM text format's integer instruction gaps (it quantizes
    # the CPU time between requests, a <0.1% effect on wall time).
    assert stored.exec_ns == result.exec_ns
    assert result2.dram_reads == result.dram_reads
    assert abs(result2.exec_ns - result.exec_ns) < 0.001 * result.exec_ns
    print("\nreplay: results identical; timing within trace-format "
          "quantization (<0.1%)")


if __name__ == "__main__":
    main()
