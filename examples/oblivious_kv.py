#!/usr/bin/env python
"""Oblivious key-value store: the downstream-application view.

Runs a small document store over AB-ORAM with the full secure data
path: values are chunked over 64B blocks, every chunk access is an
oblivious Ring ORAM access, payloads live in memory only as ChaCha20
ciphertext under a Merkle tree, and chain padding hides value sizes.
Prints what an integrator cares about: per-operation ORAM cost and the
space bill of the underlying scheme.

Run:  python examples/oblivious_kv.py [--levels 9] [--pad-chunks 4]
"""

import argparse

from repro.analysis.report import render_mapping_table
from repro.app.kvstore import ObliviousKV

DOCUMENTS = {
    b"shopping-list": b"eggs, milk, 2x oblivious RAM",
    b"diary-entry": (b"Dear diary, today the memory bus learned "
                     b"nothing about my access pattern. " * 4),
    b"ssh-key": bytes(range(64)) * 2,
    b"empty-note": b"",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", type=int, default=9)
    parser.add_argument("--scheme", default="ab")
    parser.add_argument("--pad-chunks", type=int, default=4,
                        help="pad chains to multiples of this (hides sizes)")
    args = parser.parse_args()

    kv = ObliviousKV.create(scheme=args.scheme, levels=args.levels, seed=1,
                            encrypted=True, pad_chunks=args.pad_chunks)

    rows = []
    for key, value in DOCUMENTS.items():
        before = kv.oram.online_accesses
        kv.put(key, value)
        put_cost = kv.oram.online_accesses - before
        before = kv.oram.online_accesses
        got = kv.get(key)
        get_cost = kv.oram.online_accesses - before
        assert got == value
        rows.append({
            "key": key.decode(),
            "value_bytes": len(value),
            "chain_blocks": len(kv._directory[key]),
            "put_oram_accesses": put_cost,
            "get_oram_accesses": get_cost,
        })
    print(render_mapping_table(
        rows,
        title=(f"Document store over {kv.oram.cfg.name} "
               f"(pad_chunks={args.pad_chunks}: same-bucket sizes cost "
               "identical access counts)"),
    ))
    print()

    # Tamper with the memory image: the next read must fail loudly.
    ds = kv.oram.datastore
    chain = kv._directory[b"ssh-key"]
    # Find where the first chunk currently lives and flip one byte.
    import numpy as np
    rows_arr = kv.oram.store.slots
    loc = np.argwhere(rows_arr == chain[0])
    tampered = False
    if loc.size:
        b, s = map(int, loc[0])
        ds.tamper_payload(b, s)
        try:
            kv.get(b"ssh-key")
        except Exception as exc:
            print(f"tamper detection: flipping one ciphertext byte -> "
                  f"{type(exc).__name__}: {exc}")
            tampered = True
    if not tampered:
        print("tamper demo skipped (block was in the stash, not the tree)")
    print()

    s = kv.stats()
    print(render_mapping_table([s], title="Store statistics"))


if __name__ == "__main__":
    main()
