#!/usr/bin/env python
"""Secure trace replay: estimate the cost of running a workload under ORAM.

The scenario the paper's introduction motivates: a secure processor
must hide its memory access pattern, so every LLC miss becomes a Ring
ORAM access. This example replays a SPEC CPU2017-style workload through
the full stack (trace -> ORAM controller -> DDR3 timing model) for the
Baseline and AB-ORAM schemes and reports execution time, the
per-operation breakdown, bandwidth, and the space bill -- the numbers a
deployment decision would weigh.

Run:  python examples/secure_trace_replay.py [--bench mcf] [--levels 12]
"""

import argparse

from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import SimConfig, simulate
from repro.sim.results import breakdown_fractions
from repro.traces.spec import SPEC_CPU2017, spec_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="mcf", choices=sorted(SPEC_CPU2017),
                        help="SPEC CPU2017 workload model (default mcf)")
    parser.add_argument("--levels", type=int, default=12)
    parser.add_argument("--requests", type=int, default=1500)
    parser.add_argument("--schemes", nargs="+",
                        default=["baseline", "dr", "ns", "ab"])
    args = parser.parse_args()

    cfgs = [schemes.by_name(s, args.levels) for s in args.schemes]
    trace = spec_trace(args.bench, cfgs[0].n_real_blocks, args.requests,
                       seed=3)
    print(f"workload {args.bench}: read MPKI {trace.read_mpki}, "
          f"write MPKI {trace.write_mpki}, "
          f"{trace.cpu_gap_ns:.0f} ns of compute between misses")
    print()

    results = {}
    for cfg in cfgs:
        results[cfg.name] = simulate(
            cfg, trace,
            SimConfig(seed=3, warmup_requests=args.requests // 3),
        )

    base = results[cfgs[0].name]
    rows = []
    for name, r in results.items():
        fr = breakdown_fractions(r)
        rows.append({
            "scheme": name,
            "exec_ms": r.exec_ns / 1e6,
            "vs_base": r.exec_ns / base.exec_ns,
            "ns_per_access": r.ns_per_access,
            "bandwidth_GBps": r.bandwidth_gbps,
            "row_hit": r.row_hit_rate,
            "readPath%": fr["readPath"],
            "evict%": fr["evictPath"],
            "reshuffle%": fr["earlyReshuffle"],
            "tree_MiB": r.tree_bytes / 2**20,
        })
    print(render_mapping_table(
        rows, title=f"Replaying {args.bench} under each scheme"))
    print()

    ab = results.get("AB")
    if ab is not None:
        saved = 1 - ab.tree_bytes / base.tree_bytes
        slow = ab.exec_ns / base.exec_ns - 1
        print(f"AB-ORAM verdict for {args.bench}: {saved:.1%} less memory "
              f"at {slow:+.1%} execution time.")


if __name__ == "__main__":
    main()
