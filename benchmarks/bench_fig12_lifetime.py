"""Fig. 12: dead-block lifetime across tree levels.

Lifetime = online accesses between a slot's death (the readPath that
consumed it) and the reuse of its space (reshuffle rewrite or remote
rental). The paper's key observation: levels near the root have
lifetimes close to zero, while leaf levels hold dead blocks for orders
of magnitude longer -- which is why DeadQ queues only track the bottom
levels, one queue per level.
"""


from _common import bench_levels, bench_requests, emit, once
from repro.analysis.deadblocks import LifetimeTracker
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.traces.spec import spec_trace


def _levels():
    # Lifetimes need several reshuffle rounds per leaf bucket.
    return max(8, bench_levels() - 4)


def test_fig12_dead_block_lifetime(benchmark):
    cfg = schemes.baseline_cb(_levels())
    n = max(8 * cfg.n_leaves, 2 * bench_requests())

    def run():
        tracker = LifetimeTracker(cfg.levels)
        oram = build_oram(cfg, seed=12, observers=[tracker])
        oram.warm_fill()
        trace = spec_trace("mcf", cfg.n_real_blocks, n, seed=12)
        for req in trace:
            oram.access(req.block, write=req.write)
        return tracker

    tracker = once(benchmark, run)

    rows = tracker.rows()
    emit(
        "fig12_lifetime",
        render_mapping_table(
            rows,
            title=(f"Fig 12: dead-block lifetime per level in online accesses "
                   f"(Baseline, L={cfg.levels}, {n} accesses; paper: top/middle "
                   "levels ~0, leaves orders of magnitude longer)"),
            precision=1,
        ),
    )

    by_level = {r["level"]: r for r in rows}
    levels_seen = sorted(by_level)
    assert levels_seen, "no lifetimes recorded"
    # Per-row sanity.
    for r in rows:
        assert 0 <= r["min"] <= r["avg"] <= r["max"]
    # Root-side levels are reclaimed much faster than leaf-side levels.
    top = by_level[levels_seen[0]]["avg"]
    leaf = by_level[levels_seen[-1]]["avg"]
    assert leaf > 4 * max(top, 1.0)
    # Average lifetime grows (weakly) toward the leaves.
    avgs = [by_level[lv]["avg"] for lv in levels_seen]
    assert avgs[-1] == max(avgs)
