"""Ablation: does position-map realism change the AB-ORAM story?

The paper (like its baselines) charges no memory traffic for position
map lookups -- Table III provisions an on-chip PosMap + PLB and leaves
the recursion implicit. This ablation turns the Freecursive-style
recursion model on (every PLB miss costs one extra full ORAM access)
and re-measures Baseline vs AB: the posMap traffic inflates *both*
schemes' absolute time, and the AB/Baseline ratio must stay put --
i.e. the paper's conclusion is robust to this modeling choice.
"""

import pytest

from _common import bench_levels, bench_requests, bench_warmup, emit, once
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.core.ab_oram import needs_extensions
from repro.core.remote import RemoteAllocator
from repro.mem.dram import DramModel
from repro.mem.layout import TreeLayout
from repro.oram import metadata as md
from repro.oram.ring import RingOram
from repro.oram.stats import CountingSink, OpKind, TeeSink
from repro.sim.engine import DramSink
from repro.traces.spec import spec_trace


def _simulate(cfg, trace, posmap_mode, warmup):
    fields = (md.ab_metadata_fields(cfg) if needs_extensions(cfg)
              else md.ring_metadata_fields(cfg))
    layout = TreeLayout(cfg, metadata_blocks=md.metadata_blocks(cfg, fields))
    counting = CountingSink(cfg.levels)
    dram_sink = DramSink(layout, DramModel())
    ext = RemoteAllocator(cfg) if needs_extensions(cfg) else None
    oram = RingOram(cfg, sink=TeeSink(counting, dram_sink), seed=5,
                    extensions=ext, posmap_mode=posmap_mode,
                    plb_entries=512)
    if oram.posmap_model is not None:
        # Scale the on-chip share down with the tree so recursion
        # actually occurs at bench size.
        oram.posmap_model.__init__(cfg.n_real_blocks, plb_entries=512,
                                   onchip_entries=max(64, cfg.n_leaves // 4))
    oram.warm_fill()
    start = 0.0
    for i, req in enumerate(trace):
        if i == warmup:
            start = dram_sink.reset_measurement()
            counting.reset()
        dram_sink.advance(trace.cpu_gap_ns)
        oram.access(req.block, write=req.write)
    return {
        "exec_ns": dram_sink.now - start,
        "posmap_ops": counting.by_kind[OpKind.POSMAP].ops,
        "plb_hit_rate": (oram.posmap_model.hit_rate
                         if oram.posmap_model else None),
    }


def test_ablation_posmap_recursion(benchmark):
    lv = bench_levels()
    base_cfg = schemes.baseline_cb(lv)
    ab_cfg = schemes.ab_scheme(lv)
    trace = spec_trace("mcf", base_cfg.n_real_blocks, bench_requests(),
                       seed=5)
    warmup = bench_warmup()

    def run():
        out = {}
        for mode in ("onchip", "recursive"):
            out[mode] = {
                "Baseline": _simulate(base_cfg, trace, mode, warmup),
                "AB": _simulate(ab_cfg, trace, mode, warmup),
            }
        return out

    results = once(benchmark, run)

    rows = []
    for mode, pair in results.items():
        rows.append({
            "posmap": mode,
            "ab_vs_baseline": pair["AB"]["exec_ns"] / pair["Baseline"]["exec_ns"],
            "posmap_ops_base": pair["Baseline"]["posmap_ops"],
            "posmap_ops_ab": pair["AB"]["posmap_ops"],
            "plb_hit_rate": pair["AB"]["plb_hit_rate"],
        })
    emit(
        "ablation_posmap",
        render_mapping_table(
            rows,
            title=("Ablation: on-chip vs recursive position map "
                   "(AB/Baseline exec ratio must be stable)"),
        ),
    )

    by = {r["posmap"]: r for r in rows}
    # Recursion really happened and really cost something.
    assert by["recursive"]["posmap_ops_ab"] > 0
    assert by["onchip"]["posmap_ops_ab"] == 0
    rec = results["recursive"]
    on = results["onchip"]
    assert rec["Baseline"]["exec_ns"] > on["Baseline"]["exec_ns"]
    # The AB conclusion is robust: ratio moves by < 6 points.
    assert by["recursive"]["ab_vs_baseline"] == pytest.approx(
        by["onchip"]["ab_vs_baseline"], abs=0.06
    )
