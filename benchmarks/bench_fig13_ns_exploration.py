"""Fig. 13: design exploration of NS (Ly-Sx grid).

Ly-Sx shrinks S by x for the last y levels on top of the CB baseline.
The paper explores the grid, finds aggressive corners (L3-S3) degrade
performance, and picks L2-S2 for standalone NS and L3-S1 for AB.
Space is exact at L=24; slowdown simulated at the bench scale.
"""

import pytest

from _common import bench_levels, bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace

GRID = [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (2, 3), (3, 1), (3, 2), (3, 3)]


def test_fig13_ns_design_exploration(benchmark):
    lv = bench_levels()
    base = schemes.baseline_cb(lv)
    trace = spec_trace("mcf", base.n_real_blocks, bench_requests(), seed=13)

    def run():
        out = {"Baseline": simulate(base, trace, sim_config(13))}
        for y, x in GRID:
            cfg = schemes.ns_scheme(lv, bottom=y, reduce_by=x)
            out[(y, x)] = simulate(cfg, trace, sim_config(13))
        return out

    results = once(benchmark, run)

    base24 = schemes.baseline_cb(24).tree_bytes
    rows = []
    for y, x in GRID:
        rows.append({
            "config": f"L{y}-S{x}",
            "space_norm_L24": schemes.ns_scheme(24, bottom=y,
                                                reduce_by=x).tree_bytes / base24,
            "slowdown": results[(y, x)].exec_ns / results["Baseline"].exec_ns,
        })
    emit(
        "fig13_ns_exploration",
        render_mapping_table(
            rows,
            title=("Fig 13: NS design exploration Ly-Sx (paper picks L2-S2 "
                   "for NS and L3-S1 for AB)"),
        ),
    )

    by_cfg = {r["config"]: r for r in rows}
    # Space: deeper/stronger shrinking saves monotonically more.
    assert (by_cfg["L1-S1"]["space_norm_L24"]
            > by_cfg["L2-S2"]["space_norm_L24"]
            > by_cfg["L3-S3"]["space_norm_L24"])
    # L2-S2 is the paper's NS: 0.8125 of baseline.
    assert by_cfg["L2-S2"]["space_norm_L24"] == pytest.approx(0.8125, abs=0.003)
    # S cannot shrink below zero: L?-S3 equals removing all S=3.
    assert by_cfg["L3-S3"]["space_norm_L24"] == pytest.approx(
        1 - 0.875 * 3 / 8, abs=0.005
    )
    # Every grid point stays within a modest performance band.
    for r in rows:
        assert r["slowdown"] < 1.2, r
    # More aggressive shrinking never helps latency dramatically: the
    # grid spans a narrow band (trade-off, not a free lunch).
    slows = [r["slowdown"] for r in rows]
    assert max(slows) - min(slows) < 0.25
