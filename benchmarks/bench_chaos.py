"""Chaos harness benchmark: BENCH_chaos.json plus its CI assertions.

Runs the smoke chaos campaign (fault injection under live serving
load through the resilient loop), emits the report next to the other
benchmark artifacts, and asserts the properties the CI gate relies on:

- the report validates against the chaos schema;
- the campaign gate holds: availability floors, 100% tamper detection
  under live load, faults actually fired where expected, and the
  tamper cell really entered (and left) degraded mode;
- the deterministic view is byte-identical across two same-seed runs;
- every cell's status accounting closes (nothing silently dropped).

The full (nightly-scale) soak runs via ``python -m repro serve chaos``
in the scheduled workflow, not here.
"""

import json

from _common import GENERATED_DIR, emit, once
from repro.serve.chaos import chaos_check, run_chaos, smoke_config
from repro.serve.report import render_chaos_report
from repro.serve.schema import deterministic_bytes, validate_chaos_report


def test_chaos_smoke_campaign(benchmark):
    doc = once(benchmark, lambda: run_chaos(smoke_config()))

    assert validate_chaos_report(doc) == []
    emit("chaos_smoke", render_chaos_report(doc))
    GENERATED_DIR.mkdir(exist_ok=True)
    out = GENERATED_DIR / "BENCH_chaos.json"
    with open(out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    # The campaign gate: availability floors, full tamper detection,
    # and the episodes/faults each cell was designed to produce.
    assert chaos_check(doc) == []

    for cell in doc["cells"]:
        assert "error" not in cell, cell
        sim = cell["sim"]
        # Status accounting closes: every request completed exactly one
        # way, and only the fault cells shed or failed anything.
        assert sim["completions"] == sim["requests"]
        assert sum(sim["status"].values()) == sim["completions"]
        if cell["name"] == "baseline":
            assert sim["availability"] == 1.0
            assert sim["status"]["shed"] == 0
            assert sim["degraded_reads"] == 0

    # Determinism: a second same-seed run reproduces every
    # non-wall-clock byte.
    again = run_chaos(smoke_config())
    assert deterministic_bytes(again) == deterministic_bytes(doc)
