"""Ablation: which DRAM effects carry the performance story.

DESIGN.md calls out two modeling choices as load-bearing for the
paper's timing shapes: (a) channel activation throttling (tRRD/tFAW),
which makes path-wide operations scale with bucket *count* rather than
bucket *size*, and (b) remote redirection costing row-buffer misses.
This ablation reruns Baseline vs DR vs NS under the real DDR3-1600
profile and under IDEAL_BUS (no activation/turnaround constraints) and
shows the schemes' relative cost ordering is robust while the absolute
gaps shrink under the idealized bus -- i.e. the conclusions do not
hinge on one timing knob.
"""


from _common import bench_levels, bench_requests, bench_warmup, emit, once
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.mem.timing import DDR3_1600, IDEAL_BUS
from repro.sim import SimConfig, simulate
from repro.traces.spec import spec_trace


def test_ablation_dram_timing_model(benchmark):
    lv = bench_levels()
    cfgs = {c.name: c for c in schemes.main_schemes(lv) if c.name != "IR"}
    trace = spec_trace("mcf", cfgs["Baseline"].n_real_blocks,
                       bench_requests(), seed=31)

    def run():
        out = {}
        for label, timing in (("ddr3", DDR3_1600), ("ideal", IDEAL_BUS)):
            sim = SimConfig(timing=timing, seed=31,
                            warmup_requests=bench_warmup())
            out[label] = {
                name: simulate(cfg, trace, sim) for name, cfg in cfgs.items()
            }
        return out

    results = once(benchmark, run)

    rows = []
    for label, by_scheme in results.items():
        base = by_scheme["Baseline"].exec_ns
        rows.append({
            "timing": label,
            **{name: r.exec_ns / base for name, r in by_scheme.items()},
        })
    emit(
        "ablation_dram",
        render_mapping_table(
            rows,
            title=("Ablation: normalized exec time under DDR3-1600 vs an "
                   "idealized bus (no tRRD/tFAW/turnaround)"),
        ),
    )

    ddr3 = rows[0]
    ideal = rows[1]
    # DR costs more than NS under both models (remote misses are real
    # misses either way).
    assert ddr3["DR"] > ddr3["NS"] - 0.03
    assert ideal["DR"] > ideal["NS"] - 0.03
    # The idealized bus rewards byte reduction more: NS/AB look better
    # without activation limits.
    assert ideal["NS"] <= ddr3["NS"] + 0.02
    assert ideal["AB"] <= ddr3["AB"] + 0.02
    # Absolute times are strictly faster on the ideal bus.
    assert (results["ideal"]["Baseline"].exec_ns
            < results["ddr3"]["Baseline"].exec_ns)
