"""Fig. 7: empirical security -- attacker success rate.

The paper simulates an attacker that, for every readPath, guesses which
of the L fetched blocks is the real one. Over a billion traces the rate
is 1/24 = 0.041666 for both Baseline and AB-ORAM. We run the same
experiment at bench scale over several benchmarks and assert that (a)
both schemes sit at 1/L and (b) AB's advantage over Baseline is
statistically negligible.
"""

import numpy as np
import pytest

from _common import bench_levels, bench_requests, emit, once
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.core.security import GuessingAttacker
from repro.traces.spec import spec_trace

BENCHES = ["mcf", "x264", "lbm", "gcc"]


def _attack(cfg, bench, n, seed):
    attacker = GuessingAttacker(cfg.levels, seed=seed)
    oram = build_oram(cfg, seed=seed, observers=[attacker])
    oram.warm_fill()
    trace = spec_trace(bench, cfg.n_real_blocks, n, seed=seed)
    for req in trace:
        oram.access(req.block, write=req.write)
    return attacker


def test_fig07_attacker_success_rate(benchmark):
    lv = bench_levels()
    base_cfg = schemes.baseline_cb(lv)
    ab_cfg = schemes.ab_scheme(lv)
    n = max(1500, bench_requests())

    def run():
        out = {}
        for bench in BENCHES:
            out[bench] = {
                "Baseline": _attack(base_cfg, bench, n, seed=17),
                "AB": _attack(ab_cfg, bench, n, seed=17),
            }
        return out

    attackers = once(benchmark, run)

    rows = []
    for bench, pair in attackers.items():
        rows.append({
            "benchmark": bench,
            "baseline_rate": pair["Baseline"].success_rate,
            "ab_rate": pair["AB"].success_rate,
            "expected_1_over_L": 1.0 / lv,
        })
    rows.append({
        "benchmark": "average",
        "baseline_rate": float(np.mean([r["baseline_rate"] for r in rows])),
        "ab_rate": float(np.mean([r["ab_rate"] for r in rows])),
        "expected_1_over_L": 1.0 / lv,
    })
    emit(
        "fig07_security",
        render_mapping_table(
            rows,
            title=(f"Fig 7: attacker success rate (L={lv}; paper: both "
                   "schemes at 1/L = 1/24 = 0.041666 for L=24)"),
            precision=4,
        ),
    )

    avg = rows[-1]
    tol = 3.5 / np.sqrt(len(BENCHES) * n)  # ~3.5 sigma of a Bernoulli mean
    assert avg["baseline_rate"] == pytest.approx(1 / lv, abs=tol)
    assert avg["ab_rate"] == pytest.approx(1 / lv, abs=tol)
    assert abs(avg["ab_rate"] - avg["baseline_rate"]) < 2 * tol
