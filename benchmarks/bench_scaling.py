"""Scaling study: O(log N) access cost and constant space ratios.

Not a paper figure, but the sanity anchor every tree-ORAM artifact
should ship: per-access latency grows logarithmically in the protected
block count (path length = L), and AB-ORAM's space ratio is
geometry-stable across tree sizes -- which is the property that lets
the timing benchmarks run at reduced L while the space math runs at 24.
"""


from _common import bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace

LEVELS = [8, 10, 12, 14]


def test_scaling_with_tree_depth(benchmark):
    n = max(500, bench_requests() // 2)

    def run():
        out = {}
        for lv in LEVELS:
            base = schemes.baseline_cb(lv)
            ab = schemes.ab_scheme(lv)
            trace = spec_trace("mcf", base.n_real_blocks, n, seed=71)
            out[lv] = {
                "Baseline": simulate(base, trace, sim_config(71)),
                "AB": simulate(ab, trace, sim_config(71)),
            }
        return out

    results = once(benchmark, run)

    rows = []
    for lv in LEVELS:
        base = results[lv]["Baseline"]
        ab = results[lv]["AB"]
        rows.append({
            "levels": lv,
            "protected_blocks": schemes.baseline_cb(lv).n_real_blocks,
            "ns_per_access_base": base.ns_per_access,
            "ns_per_access_ab": ab.ns_per_access,
            "ab_space_ratio": ab.tree_bytes / base.tree_bytes,
            "ab_exec_ratio": ab.exec_ns / base.exec_ns,
        })
    emit(
        "scaling",
        render_mapping_table(
            rows,
            title=("Scaling with tree depth: per-access cost ~ O(L), "
                   "AB space ratio ~ constant"),
        ),
    )

    # Per-access cost grows from the smallest to the largest tree
    # (small-L points wobble with row-buffer/refresh interactions,
    # so only the endpoints are asserted) ...
    costs = [r["ns_per_access_base"] for r in rows]
    assert costs[-1] > costs[0]
    # ... and sub-linearly in N (logarithmically): a 64x block-count
    # growth costs well under 4x per access.
    growth_total = costs[-1] / costs[0]
    blocks_growth = rows[-1]["protected_blocks"] / rows[0]["protected_blocks"]
    assert growth_total < 4.0 < blocks_growth
    # AB's space ratio is stable across scales (geometry invariance).
    ratios = [r["ab_space_ratio"] for r in rows]
    assert max(ratios) - min(ratios) < 0.02
    # And its exec ratio stays within a moderate band everywhere
    # (small trees exaggerate AB's evictPath savings -- the bottom band
    # covers most of the path; the band tightens toward 1.0 as L grows).
    for r in rows:
        assert 0.75 < r["ab_exec_ratio"] < 1.15
    assert 0.9 < rows[-1]["ab_exec_ratio"] < 1.1
