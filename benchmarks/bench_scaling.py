"""Scaling study: O(log N) access cost, constant space ratios, fleet.

Not a paper figure, but the sanity anchor every tree-ORAM artifact
should ship: per-access latency grows logarithmically in the protected
block count (path length = L), and AB-ORAM's space ratio is
geometry-stable across tree sizes -- which is the property that lets
the timing benchmarks run at reduced L while the space math runs at 24.

The second study is the horizontal axis: served throughput and
per-shard memory as one workload spreads over an N-subtree fleet
(`repro.core.sharding`) -- the capacity curve `serve scaling` sweeps,
at benchmark scale.
"""


from _common import bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace

LEVELS = [8, 10, 12, 14]


def test_scaling_with_tree_depth(benchmark):
    n = max(500, bench_requests() // 2)

    def run():
        out = {}
        for lv in LEVELS:
            base = schemes.baseline_cb(lv)
            ab = schemes.ab_scheme(lv)
            trace = spec_trace("mcf", base.n_real_blocks, n, seed=71)
            out[lv] = {
                "Baseline": simulate(base, trace, sim_config(71)),
                "AB": simulate(ab, trace, sim_config(71)),
            }
        return out

    results = once(benchmark, run)

    rows = []
    for lv in LEVELS:
        base = results[lv]["Baseline"]
        ab = results[lv]["AB"]
        rows.append({
            "levels": lv,
            "protected_blocks": schemes.baseline_cb(lv).n_real_blocks,
            "ns_per_access_base": base.ns_per_access,
            "ns_per_access_ab": ab.ns_per_access,
            "ab_space_ratio": ab.tree_bytes / base.tree_bytes,
            "ab_exec_ratio": ab.exec_ns / base.exec_ns,
        })
    emit(
        "scaling",
        render_mapping_table(
            rows,
            title=("Scaling with tree depth: per-access cost ~ O(L), "
                   "AB space ratio ~ constant"),
        ),
    )

    # Per-access cost grows from the smallest to the largest tree
    # (small-L points wobble with row-buffer/refresh interactions,
    # so only the endpoints are asserted) ...
    costs = [r["ns_per_access_base"] for r in rows]
    assert costs[-1] > costs[0]
    # ... and sub-linearly in N (logarithmically): a 64x block-count
    # growth costs well under 4x per access.
    growth_total = costs[-1] / costs[0]
    blocks_growth = rows[-1]["protected_blocks"] / rows[0]["protected_blocks"]
    assert growth_total < 4.0 < blocks_growth
    # AB's space ratio is stable across scales (geometry invariance).
    ratios = [r["ab_space_ratio"] for r in rows]
    assert max(ratios) - min(ratios) < 0.02
    # And its exec ratio stays within a moderate band everywhere
    # (small trees exaggerate AB's evictPath savings -- the bottom band
    # covers most of the path; the band tightens toward 1.0 as L grows).
    for r in rows:
        assert 0.75 < r["ab_exec_ratio"] < 1.15
    assert 0.9 < rows[-1]["ab_exec_ratio"] < 1.1


FLEET_SHARDS = [1, 2, 4]


def test_fleet_capacity_curve(benchmark):
    from repro.serve.loadgen import WorkloadConfig
    from repro.serve.scaling import (
        ScalingCell, ScalingConfig, memory_block, run_scaling,
    )

    blocks = 2 ** 16
    wl = WorkloadConfig(
        name="cap-64k",
        n_requests=max(400, bench_requests() // 3),
        n_keys=50_000,
        stored_keys=400,
        arrival="poisson",
        rate_rps=1e8,          # service-bound: measure capacity
        zipf_s=0.7,
        read_fraction=0.85,
        value_bytes=48,
        expect_dedup=False,
    )
    cfg = ScalingConfig(
        measured_levels=9,
        cells=tuple(
            ScalingCell(
                name="cap-64k", total_blocks=blocks, shards=s, workload=wl,
            )
            for s in FLEET_SHARDS
        ),
        smoke=True,
    )

    doc = once(benchmark, lambda: run_scaling(cfg))

    by_shards = {c["shards"]: c for c in doc["cells"]}
    rows = []
    for s in FLEET_SHARDS:
        cell = by_shards[s]
        assert "error" not in cell, cell.get("error")
        fleet = cell["sim"]["fleet"]
        mem = cell["memory"]
        rows.append({
            "shards": s,
            "ns_per_request": fleet["ns_per_request"],
            "requests_per_s_sim": fleet["requests_per_s_sim"],
            "availability": fleet["availability"],
            "shard_levels": mem["shard_levels"],
            "per_shard_MB": mem["per_shard_bytes"] / 2**20,
            "fleet_MB": mem["fleet_bytes"] / 2**20,
        })
    emit(
        "fleet_capacity",
        render_mapping_table(
            rows,
            title=("Fleet capacity curve (2^16 blocks): throughput up, "
                   "per-shard memory down with shard count"),
        ),
    )

    # Every fleet serves the whole workload, and adding shards
    # monotonically raises served throughput ...
    ns_per_req = [r["ns_per_request"] for r in rows]
    assert all(r["availability"] == 1.0 for r in rows)
    assert ns_per_req == sorted(ns_per_req, reverse=True)
    # ... clearing the CI gate at four shards (perfect would be ~4x;
    # the gap is the fullest PRF shard).
    assert ns_per_req[0] / ns_per_req[-1] >= 3.0
    # Per-shard trees shrink as the universe spreads, and the fleet
    # total stays within the power-of-two rounding band of one tree.
    per_shard = [r["per_shard_MB"] for r in rows]
    assert per_shard == sorted(per_shard, reverse=True)
    single = memory_block("ab", blocks, 1)["single_tree_bytes"] / 2**20
    for r in rows:
        assert r["fleet_MB"] <= 2.5 * single
