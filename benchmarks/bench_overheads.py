"""Section VIII-H: storage overheads of AB-ORAM.

On-chip: the DeadQ queues (six levels x 1000 entries of
{slotAddr, slotInd}) cost ~21KB. Memory: AB's extra metadata stays
below one 64B block per bucket (33B + 28B with R = 6), so the metadata
access phase costs no extra transfer.
"""

import pytest

from _common import emit, once
from repro.analysis.report import render_mapping_table
from repro.analysis.space import overhead_report
from repro.core import schemes


def test_storage_overheads(benchmark):
    rep = once(benchmark, lambda: overhead_report(schemes.ab_scheme(24)))

    rows = [
        {"quantity": "DeadQ on-chip bytes", "value": rep["deadq_onchip_bytes"],
         "paper": "~21KB"},
        {"quantity": "tracked levels", "value": len(rep["deadq_levels"]),
         "paper": "6"},
        {"quantity": "entries per queue", "value": rep["deadq_capacity"],
         "paper": "1000"},
        {"quantity": "Ring metadata bytes/bucket",
         "value": rep["ring_metadata_bytes"], "paper": "33"},
        {"quantity": "AB metadata bytes/bucket",
         "value": rep["ab_metadata_bytes"], "paper": "61"},
        {"quantity": "AB extra metadata bytes",
         "value": rep["ab_extra_metadata_bytes"], "paper": "28"},
        {"quantity": "fits one 64B block",
         "value": rep["ab_metadata_fits_block"], "paper": "yes"},
    ]
    emit(
        "overheads",
        render_mapping_table(rows, title="Section VIII-H storage overheads"),
    )

    assert rep["deadq_onchip_bytes"] == pytest.approx(21 * 1024, rel=0.15)
    assert len(rep["deadq_levels"]) == 6
    assert rep["ab_metadata_fits_block"]
    assert rep["ring_metadata_bytes"] <= 40
    assert rep["ab_extra_metadata_bytes"] <= 32
