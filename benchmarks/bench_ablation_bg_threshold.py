"""Ablation: the background-eviction threshold (CB's safety knob).

Bucket Compaction prevents stash overflow by issuing dummy accesses
whenever occupancy exceeds a threshold. The threshold trades dummy
traffic against stash headroom: too low and the ORAM burns accesses on
dummies, too high and the tail occupancy approaches the capacity the
hardware must provision. This ablation sweeps the threshold on the CB
baseline and reports dummy-access counts, execution time, and the
occupancy tail -- the trade the CB paper (and the IR comparison in our
EXPERIMENTS.md) revolves around.
"""

import dataclasses


from _common import bench_levels, bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.analysis.stash_stats import StashStats
from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.sim import simulate
from repro.traces.spec import spec_trace

THRESHOLDS = [15, 30, 60, 120, 200]


def _levels():
    return max(8, bench_levels() - 4)


def test_ablation_background_threshold(benchmark):
    lv = _levels()
    base = schemes.baseline_cb(lv)
    n = max(4 * base.n_leaves * base.evict_rate, 2 * bench_requests())
    trace = spec_trace("mcf", base.n_real_blocks, n, seed=51)

    def run():
        out = {}
        for th in THRESHOLDS:
            cfg = dataclasses.replace(base, background_evict_threshold=th,
                                      geometry=base.geometry)
            stats = StashStats()
            oram = build_oram(cfg, seed=51)
            stats.attach(oram)
            oram.warm_fill()
            for req in trace:
                oram.access(req.block, write=req.write)
            result = simulate(cfg, trace.truncated(max(600, n // 4)),
                              sim_config(51))
            out[th] = {
                "stash": stats.summary(),
                "bg_accesses": oram.background_accesses,
                "exec_ns": result.exec_ns,
            }
        return out

    results = once(benchmark, run)

    base_exec = results[THRESHOLDS[-1]]["exec_ns"]
    rows = []
    for th in THRESHOLDS:
        r = results[th]
        rows.append({
            "threshold": th,
            "bg_dummy_accesses": r["bg_accesses"],
            "stash_p99": r["stash"]["p99"],
            "stash_max": r["stash"]["max"],
            "exec_norm": r["exec_ns"] / base_exec,
        })
    emit(
        "ablation_bg_threshold",
        render_mapping_table(
            rows,
            title=("Background-eviction threshold sweep on the CB baseline "
                   "(low threshold -> dummy traffic; high -> stash tail)"),
        ),
    )

    by = {r["threshold"]: r for r in rows}
    # A tight threshold forces background eviction...
    assert by[15]["bg_dummy_accesses"] > 0
    # ...a loose one avoids it entirely at this scale.
    assert by[200]["bg_dummy_accesses"] == 0
    # Dummy traffic decreases monotonically with the threshold.
    counts = [by[t]["bg_dummy_accesses"] for t in THRESHOLDS]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    # The occupancy tail is capped by the threshold (plus transient).
    for th in THRESHOLDS:
        assert by[th]["stash_p99"] <= th + base.stash_capacity * 0.2
