"""Fig. 8: the paper's main result.

(a) Total space consumption normalized to Baseline -- computed exactly
    at the paper's 24-level geometry (IR ~1.0, DR 0.75, NS 0.81,
    AB 0.645);
(b) space utilization (Baseline 31.2% -> DR 41.5% -> AB 48.5%);
(c) normalized execution time with the per-operation breakdown,
    simulated per benchmark at the bench scale (paper: IR +4%, DR +3%,
    NS ~0%, AB +4%; see EXPERIMENTS.md for our measured deltas and the
    known IR deviation).
"""

import pytest

from _common import emit, normalized_geomean, once, run_main_matrix
from repro.analysis.report import render_mapping_table
from repro.analysis.space import space_table, utilization_table
from repro.core import schemes
from repro.sim.results import breakdown_fractions


def test_fig08_main_results(benchmark):
    paper = schemes.main_schemes(24)

    matrix = once(benchmark, run_main_matrix)

    # ---- 8a / 8b: exact space math at L = 24.
    text_a = render_mapping_table(
        space_table(paper),
        title="Fig 8a: space consumption normalized to Baseline (exact, L=24)",
    )
    text_b = render_mapping_table(
        utilization_table(paper),
        title="Fig 8b: space utilization (exact, L=24)",
    )

    # ---- 8c: normalized execution time per benchmark + geomean.
    base = matrix["Baseline"]
    rows = []
    for bench in base:
        row = {"benchmark": bench}
        for scheme, by_trace in matrix.items():
            row[scheme] = by_trace[bench].exec_ns / base[bench].exec_ns
        rows.append(row)
    gm = normalized_geomean(matrix, "exec_ns")
    rows.append({"benchmark": "geomean", **gm})
    text_c = render_mapping_table(
        rows,
        title=("Fig 8c: normalized execution time (simulated; paper: "
               "IR 1.04, DR 1.03, NS ~1.00, AB 1.04)"),
    )

    # Operation breakdown of the geomean-representative benchmark.
    brk_rows = []
    for scheme, by_trace in matrix.items():
        first = next(iter(by_trace.values()))
        fr = breakdown_fractions(first)
        brk_rows.append({"scheme": scheme, **fr})
    text_d = render_mapping_table(
        brk_rows,
        title=f"Fig 8c (inset): memory-time breakdown by operation "
              f"({next(iter(base))})",
    )

    emit("fig08_main_results",
         "\n\n".join([text_a, text_b, text_c, text_d]))

    # ---- assertions: the paper's headline numbers.
    space = {r["scheme"]: r["normalized"] for r in space_table(paper)}
    assert space["DR"] == pytest.approx(0.754, abs=0.003)
    assert space["NS"] == pytest.approx(0.8125, abs=0.003)
    assert space["AB"] == pytest.approx(0.645, abs=0.003)
    assert space["IR"] == pytest.approx(1.0, abs=0.01)

    util = {r["scheme"]: r["utilization"] for r in utilization_table(paper)}
    assert util["Baseline"] == pytest.approx(0.312, abs=0.002)
    assert util["DR"] == pytest.approx(0.415, abs=0.003)
    assert util["AB"] == pytest.approx(0.485, abs=0.003)

    # Performance: the AB family stays within a low-overhead band.
    for scheme in ("DR", "NS", "AB"):
        assert 0.85 < gm[scheme] < 1.15, f"{scheme}: {gm[scheme]}"
    # DR never beats NS by much (it pays for remote redirection).
    assert gm["DR"] > gm["NS"] - 0.05
