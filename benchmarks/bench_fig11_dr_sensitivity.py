"""Fig. 11: sensitivity of DR to the starting level.

DR-Lx applies dead-block reclaim from level x downward. Starting higher
(more levels) saves more space -- but with fast-diminishing returns,
because the top 17 of 24 levels hold <1% of capacity while contributing
reshuffle work; the paper therefore picks L18 (bottom six levels).
Space is exact at L=24; slowdown is simulated at the bench scale.
"""

import pytest

from _common import bench_levels, bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace


def test_fig11_dr_level_sensitivity(benchmark):
    lv = bench_levels()
    base = schemes.baseline_cb(lv)
    trace = spec_trace("mcf", base.n_real_blocks, bench_requests(), seed=11)
    bottoms = [1, 2, 3, 4, 5, 6]

    def run():
        out = {"Baseline": simulate(base, trace, sim_config(11))}
        for b in bottoms:
            cfg = schemes.dr_scheme(lv, bottom=b)
            out[b] = simulate(cfg, trace, sim_config(11))
        return out

    results = once(benchmark, run)

    base24 = schemes.baseline_cb(24).tree_bytes
    rows = []
    for b in bottoms:
        start_level_24 = 24 - b
        rows.append({
            "config": f"DR-L{start_level_24}",
            "levels_covered": b,
            "space_norm_L24": schemes.dr_scheme(24, bottom=b).tree_bytes / base24,
            "slowdown": results[b].exec_ns / results["Baseline"].exec_ns,
        })
    emit(
        "fig11_dr_sensitivity",
        render_mapping_table(
            rows,
            title=("Fig 11: DR sensitivity to the starting level "
                   "(space exact at L=24; paper picks DR-L18 where space "
                   "saving saturates)"),
        ),
    )

    spaces = [r["space_norm_L24"] for r in rows]
    # More covered levels -> monotonically more space saved ...
    assert all(a >= b for a, b in zip(spaces, spaces[1:]))
    # ... with diminishing returns: the first level dominates.
    assert (spaces[0] - spaces[1]) < (1.0 - spaces[0])
    gain_456 = spaces[3] - spaces[5]
    gain_1 = 1.0 - spaces[0]
    assert gain_456 < 0.1 * gain_1
    # DR-L18 (bottom 6) reaches the paper's 75%.
    assert spaces[-1] == pytest.approx(0.754, abs=0.003)
    # Slowdowns stay in a low band across the sweep.
    for r in rows:
        assert r["slowdown"] < 1.15, r
