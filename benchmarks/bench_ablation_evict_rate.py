"""Ablation: the eviction rate A (Ren et al.'s design-space knob).

Ring ORAM triggers an evictPath every A online accesses. Small A keeps
the stash empty but spends most of the memory system on evictions;
large A amortizes them but pushes work into earlyReshuffles and the
stash. The paper adopts A = 5 from Ren et al.'s design-space
exploration; this ablation sweeps A on the CB baseline and on AB.

Two findings: (i) the adopted A=5 sits at the knee of the baseline's
amortization curve; (ii) AB's *relative* cost rises monotonically with
A -- eviction-heavy regimes favour AB's smaller paths, and extreme A
destabilizes it (its low-slack bottom buckets push the stash over the
background-eviction threshold, triggering dummy-access storms). The
paper's A=5 point is comfortably inside AB's stable region.
"""

import dataclasses


from _common import bench_levels, bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace

RATES = [2, 3, 5, 8, 12]


def _with_rate(cfg, a):
    # Large A accumulates more stash between evictions; the paper's
    # 300-entry stash is provisioned for A=5, so the sweep doubles the
    # capacity (the configuration doctor's stash-headroom warning is
    # about exactly this transient).
    return dataclasses.replace(cfg, evict_rate=a, geometry=cfg.geometry,
                               stash_capacity=600,
                               background_evict_threshold=200,
                               name=f"{cfg.name}-A{a}")


def test_ablation_evict_rate(benchmark):
    lv = max(8, bench_levels() - 4)
    base = schemes.baseline_cb(lv)
    ab = schemes.ab_scheme(lv)
    n = max(2 * base.n_leaves * max(RATES), 2 * bench_requests())
    trace = spec_trace("mcf", base.n_real_blocks, n, seed=81)

    def run():
        out = {}
        for a in RATES:
            out[a] = {
                "Baseline": simulate(_with_rate(base, a), trace,
                                     sim_config(81)),
                "AB": simulate(_with_rate(ab, a), trace, sim_config(81)),
            }
        return out

    results = once(benchmark, run)

    rows = []
    for a in RATES:
        b = results[a]["Baseline"]
        x = results[a]["AB"]
        rows.append({
            "A": a,
            "base_ns_per_access": b.ns_per_access,
            "base_stash_peak": b.stash_peak,
            "base_reshuffles": sum(b.reshuffles_by_level),
            "ab_vs_base": x.exec_ns / b.exec_ns,
        })
    emit(
        "ablation_evict_rate",
        render_mapping_table(
            rows,
            title=("Eviction-rate sweep (paper adopts A=5): eviction "
                   "amortization vs stash pressure; AB's ratio stays put"),
        ),
    )

    by = {r["A"]: r for r in rows}
    # Fewer evictions overall as A grows -> total reshuffles drop.
    resh = [by[a]["base_reshuffles"] for a in RATES]
    assert all(x >= y for x, y in zip(resh, resh[1:]))
    # Stash pressure grows with A.
    assert by[RATES[-1]]["base_stash_peak"] >= by[RATES[0]]["base_stash_peak"]
    # Amortization pays: per-access cost at A=5 beats A=2 clearly.
    assert by[5]["base_ns_per_access"] < by[2]["base_ns_per_access"]
    # AB's relative cost rises monotonically with A (evict-heavy
    # regimes favour AB's shorter paths)...
    ratios = [by[a]["ab_vs_base"] for a in RATES]
    assert all(x <= y + 0.02 for x, y in zip(ratios, ratios[1:]))
    # ...and the paper's A=5 point sits well inside AB's stable region.
    assert by[5]["ab_vs_base"] < 1.1
    assert by[8]["ab_vs_base"] < 1.1
