"""Ablation: the two S-extension strategies of section V-C1.

The paper describes two ways to exploit remote allocation and picks
strategy (2) for AB-ORAM:

- **strategy (1)** (``DR-perf``): allocate the baseline's Z = 8 and
  extend sustain to 9 at runtime -- no space saving, fewer
  earlyReshuffles (a performance play);
- **strategy (2)** (``DR``): allocate Z = 6 and extend sustain back to
  the baseline's 7 -- 25% space saving at roughly baseline reshuffle
  rates.

This ablation measures both against the Baseline and checks the
trade-off the paper asserts when choosing between them.
"""

import numpy as np
import pytest

from _common import bench_levels, bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace


def _levels():
    # Reshuffle-rate differences need several evictPath rounds.
    return max(8, bench_levels() - 4)


def test_ablation_extension_strategies(benchmark):
    lv = _levels()
    cfgs = {
        "Baseline": schemes.baseline_cb(lv),
        "DR-perf": schemes.dr_perf_scheme(lv),
        "DR": schemes.dr_scheme(lv),
    }
    n = max(4 * cfgs["Baseline"].n_leaves * cfgs["Baseline"].evict_rate,
            2 * bench_requests())
    trace = spec_trace("mcf", cfgs["Baseline"].n_real_blocks, n, seed=41)

    def run():
        return {name: simulate(c, trace, sim_config(41))
                for name, c in cfgs.items()}

    results = once(benchmark, run)

    base = results["Baseline"]
    band = slice(lv - 6, lv)
    rows = []
    for name, r in results.items():
        reshuffles = np.array(r.reshuffles_by_level, dtype=float)
        base_resh = np.array(base.reshuffles_by_level, dtype=float)
        rows.append({
            "scheme": name,
            "space_norm": r.tree_bytes / base.tree_bytes,
            "early_reshuffles": (
                r.ops_by_kind["earlyReshuffle"]
                / max(1, base.ops_by_kind["earlyReshuffle"])
            ),
            "band_reshuffles": reshuffles[band].sum() / base_resh[band].sum(),
            "exec_norm": r.exec_ns / base.exec_ns,
            "ext_ratio": r.extension_ratio,
        })
    emit(
        "ablation_strategy1",
        render_mapping_table(
            rows,
            title=("Section V-C1 strategies: (1) extend beyond baseline "
                   "(DR-perf) vs (2) shrink then recover (DR)"),
        ),
    )

    by = {r["scheme"]: r for r in rows}
    # Strategy (1): no space saving, strictly fewer early reshuffles.
    assert by["DR-perf"]["space_norm"] == pytest.approx(1.0, abs=1e-9)
    assert by["DR-perf"]["early_reshuffles"] < 1.0
    # Strategy (2): the paper's 25% saving, reshuffles near baseline.
    assert by["DR"]["space_norm"] == pytest.approx(0.754, abs=0.01)
    assert by["DR"]["band_reshuffles"] < 1.6
    # Both rely on the DeadQ successfully granting extensions.
    assert by["DR-perf"]["ext_ratio"] > 0.5
    assert by["DR"]["ext_ratio"] > 0.5
