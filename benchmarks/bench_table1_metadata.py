"""Table I: organization of bucket metadata in Ring ORAM and AB-ORAM.

Regenerates the field-by-field bit budget for both protocols at the
paper's 24-level setting and checks the sizing claims of section
VIII-H: Ring metadata ~33B (one 64B block), AB adds ~28B and still
fits one block with R = 6.
"""


from _common import emit, once
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.oram.metadata import summarize, table1


def test_table1_metadata_budget(benchmark):
    cfg = schemes.ab_scheme(24)

    rows_map = once(benchmark, lambda: table1(cfg))

    rows = [
        {
            "field": name,
            "category": row["category"],
            "ring_bits": row["ring_bits"] or None,
            "ab_bits": row["ab_bits"],
            "function": row["function"],
        }
        for name, row in rows_map.items()
    ]
    s = summarize(cfg)
    rows.append({"field": "TOTAL bytes", "category": "",
                 "ring_bits": s["ring_bytes"] * 8,
                 "ab_bits": s["ab_bytes"] * 8, "function": ""})
    emit(
        "table1_metadata",
        render_mapping_table(
            rows,
            title=("Table I: bucket metadata bits, Ring vs AB-ORAM "
                   f"(L=24, R={cfg.max_remote_slots}; paper: 33B vs 61B)"),
        ),
    )

    assert s["ring_bytes"] <= 40           # paper: 33B
    assert s["ab_extra_bytes"] <= 32       # paper: +28B
    assert s["fits_one_block"]             # paper: both fit one 64B block
    assert rows_map["status"]["ab_bits"] == 2 * cfg.geometry[-1].z_total
    assert rows_map["remoteAddr"]["ab_bits"] == cfg.max_remote_slots * 24
