"""Fig. 3: dead blocks across the levels.

After a long run, the paper reports the per-level dead-block census
next to the per-level bucket count: the leaf level dominates in
absolute terms (~2.1 dead blocks per bucket there), and per-bucket
density grows toward the leaves -- the observation motivating remote
allocation at the bottom levels.
"""

from _common import bench_levels, bench_requests, emit, once
from repro.analysis.deadblocks import DeadBlockCensus
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.traces.spec import spec_trace

# Dead-block steady state needs many reshuffle rounds over the
# leaves; a slightly smaller tree with proportionally more accesses
# reaches the paper's plateau in reasonable wall time.
def _levels():
    return max(8, bench_levels() - 4)


def test_fig03_dead_blocks_per_level(benchmark):
    cfg = schemes.baseline_cb(_levels())
    n = max(8 * cfg.n_leaves, 2 * bench_requests())

    def run():
        trace = spec_trace("mcf", cfg.n_real_blocks, n, seed=7)
        oram = build_oram(cfg, seed=7)
        oram.warm_fill()
        census = DeadBlockCensus(interval=n).attach(oram)
        for req in trace:
            oram.access(req.block, write=req.write)
        return census.per_level_snapshot()

    snapshot = once(benchmark, run)

    rows = []
    for lv in range(cfg.levels):
        buckets = cfg.buckets_at(lv)
        rows.append({
            "level": lv,
            "dead_blocks": int(snapshot[lv]),
            "buckets": buckets,
            "dead_per_bucket": snapshot[lv] / buckets,
        })
    emit(
        "fig03_dead_blocks_per_level",
        render_mapping_table(
            rows,
            title=(f"Fig 3: dead blocks across levels (Baseline, L={cfg.levels}, "
                   f"{n} online accesses; paper: leaf level dominates, "
                   "~2.1 dead/bucket at leaves)"),
        ),
    )

    # Leaf level holds the most dead blocks in absolute terms.
    assert snapshot[-1] == snapshot.max()
    # Dead blocks exist across the bottom half of the tree.
    assert (snapshot[cfg.levels // 2:] > 0).all()
    # Per-bucket density at the leaves is O(1) (paper: ~2.1 of S=3+Y).
    leaf_density = snapshot[-1] / cfg.buckets_at(cfg.levels - 1)
    assert 0.3 < leaf_density < cfg.geometry[-1].z_total
