"""Fig. 2: dead blocks over time.

The paper tracks the total number of dead blocks as execution
progresses: the population rises quickly at first (readPaths kill L
slots each while early reshuffles are still rare) and then plateaus
once dead blocks spread across all paths. This benchmark replays that
experiment on the Baseline scheme for three benchmarks plus their
average, exactly as the paper's figure reports, and asserts the
rise-then-plateau shape.
"""

import numpy as np

from _common import bench_levels, bench_requests, emit, once
from repro.analysis.deadblocks import DeadBlockCensus
from repro.analysis.report import render_series
from repro.core import schemes
from repro.core.ab_oram import build_oram
from repro.traces.spec import spec_trace

# Dead-block steady state needs many reshuffle rounds over the
# leaves; a slightly smaller tree with proportionally more accesses
# reaches the paper's plateau in reasonable wall time.
def _levels():
    return max(8, bench_levels() - 4)

BENCHES = ["mcf", "lbm", "x264"]


def _run_one(cfg, bench, n_requests, interval):
    trace = spec_trace(bench, cfg.n_real_blocks, n_requests, seed=11)
    oram = build_oram(cfg, seed=11)
    oram.warm_fill()
    census = DeadBlockCensus(interval=interval).attach(oram)
    for req in trace:
        oram.access(req.block, write=req.write)
    return census


def test_fig02_dead_blocks_over_time(benchmark):
    cfg = schemes.baseline_cb(_levels())
    n = max(4 * cfg.n_leaves, bench_requests())
    interval = max(1, n // 20)

    def run():
        return {b: _run_one(cfg, b, n, interval) for b in BENCHES}

    censuses = once(benchmark, run)

    series = {}
    for bench, census in censuses.items():
        series[bench] = {x: d for x, d in census.samples}
    xs = sorted(next(iter(series.values())).keys())
    series["average"] = {
        x: float(np.mean([series[b][x] for b in BENCHES])) for x in xs
    }
    emit(
        "fig02_dead_blocks_over_time",
        render_series(
            "online_accesses",
            series,
            title=(f"Fig 2: dead blocks over time (Baseline, L={cfg.levels}; "
                   "paper shape: fast rise, then plateau)"),
            precision=0,
        ),
    )

    for bench, census in censuses.items():
        pops = [d for _, d in census.samples]
        early = np.mean(pops[: max(1, len(pops) // 5)])
        late = census.stabilized_population
        assert late > early, f"{bench}: population did not grow"
        tail = pops[-5:]
        assert max(tail) - min(tail) < 0.5 * late + 50, (
            f"{bench}: population did not stabilize"
        )
