"""Fig. 9: bandwidth impact of AB-ORAM.

The paper reports that AB increases memory bandwidth usage by ~1% on
average (the cost of remote redirections and extra reshuffles is mostly
offset by cheaper evictPaths). We measure bytes transferred per online
access, normalized to Baseline, per benchmark.
"""

import pytest

from _common import emit, normalized_geomean, once, run_main_matrix
from repro.analysis.report import render_mapping_table


def test_fig09_bandwidth_impact(benchmark):
    matrix = once(benchmark, lambda: run_main_matrix(seed=9))

    base = matrix["Baseline"]
    rows = []
    for bench in base:
        row = {"benchmark": bench}
        for scheme in ("Baseline", "DR", "NS", "AB"):
            r = matrix[scheme][bench]
            per_access = r.bytes_transferred / r.requests
            base_pa = base[bench].bytes_transferred / base[bench].requests
            row[scheme] = per_access / base_pa
        rows.append(row)
    gm = normalized_geomean(matrix, "bytes_transferred")
    rows.append({"benchmark": "geomean",
                 **{k: gm[k] for k in ("Baseline", "DR", "NS", "AB")}})
    emit(
        "fig09_bandwidth",
        render_mapping_table(
            rows,
            title=("Fig 9: bytes per access normalized to Baseline "
                   "(paper: AB ~ +1%)"),
        ),
    )

    # AB's bandwidth demand stays within a few percent of Baseline.
    assert gm["AB"] == pytest.approx(1.0, abs=0.10)
    # And every individual benchmark stays close too.
    for row in rows[:-1]:
        assert row["AB"] == pytest.approx(1.0, abs=0.15), row
