"""Fig. 14: AB-ORAM's capability of extending the S value.

The extension ratio = granted / attempted S extensions at reshuffle
time. The paper measures ~100% for standalone DR (dead blocks are
abundant) and ~74% for AB (NS has already removed most reserved
dummies, so fewer dead blocks are available), and notes the ratio is
application-independent. We reproduce both the DR > AB gap and the
cross-benchmark stability.
"""

import numpy as np

from _common import bench_levels, bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace

BENCHES = ["mcf", "lbm", "x264", "gcc"]


def _levels():
    # The ratio converges once the DeadQs have seen a few rounds of the
    # bottom levels; a smaller tree gets there within the bench budget.
    return max(8, bench_levels() - 4)


def test_fig14_extension_ratio(benchmark):
    lv = _levels()
    dr_cfg = schemes.dr_scheme(lv)
    ab_cfg = schemes.ab_scheme(lv)
    n = max(6 * dr_cfg.n_leaves, 2 * bench_requests())

    def run():
        out = {}
        for bench in BENCHES:
            trace = spec_trace(bench, dr_cfg.n_real_blocks, n, seed=14)
            out[bench] = {
                "DR": simulate(dr_cfg, trace, sim_config(14)),
                "AB": simulate(ab_cfg, trace, sim_config(14)),
            }
        return out

    results = once(benchmark, run)

    rows = []
    for bench, pair in results.items():
        rows.append({
            "benchmark": bench,
            "DR": pair["DR"].extension_ratio,
            "AB": pair["AB"].extension_ratio,
        })
    rows.append({
        "benchmark": "average",
        "DR": float(np.mean([r["DR"] for r in rows])),
        "AB": float(np.mean([r["AB"] for r in rows])),
    })
    emit(
        "fig14_extension_ratio",
        render_mapping_table(
            rows,
            title=(f"Fig 14: S-extension success ratio (L={lv}, {n} accesses; "
                   "paper: DR ~100%, AB ~74%, application-independent)"),
        ),
    )

    avg = rows[-1]
    # DR grants nearly always; AB grants clearly less.
    assert avg["DR"] > 0.75
    assert avg["AB"] < avg["DR"]
    assert avg["AB"] > 0.3
    # Application independence: tight spread across benchmarks.
    dr_spread = max(r["DR"] for r in rows[:-1]) - min(r["DR"] for r in rows[:-1])
    ab_spread = max(r["AB"] for r in rows[:-1]) - min(r["AB"] for r in rows[:-1])
    assert dr_spread < 0.15
    assert ab_spread < 0.15

    # Supplementary: dead-slot scarcity widens the DR-AB gap. At the
    # paper's scale a 1000-entry DeadQ serves ~8M leaf buckets; at
    # bench scale it serves a few hundred, so supply is abundant and
    # both ratios sit near 1. Shrinking the queue reproduces the
    # paper's regime (DR stays higher, AB drops further).
    sweep_rows = []
    trace = spec_trace("mcf", dr_cfg.n_real_blocks, n, seed=14)
    for cap in (1000, 8, 4, 2):
        dr_r = simulate(schemes.dr_scheme(lv, deadq_capacity=cap), trace,
                        sim_config(14))
        ab_r = simulate(schemes.ab_scheme(lv, deadq_capacity=cap), trace,
                        sim_config(14))
        sweep_rows.append({"deadq_capacity": cap,
                           "DR": dr_r.extension_ratio,
                           "AB": ab_r.extension_ratio})
    emit(
        "fig14_extension_ratio_scarcity",
        render_mapping_table(
            sweep_rows,
            title=("Fig 14 (supplement): extension ratio vs DeadQ "
                   "capacity (scarcity regime; paper's point: DR ~1.0, "
                   "AB ~0.74)"),
        ),
    )
    for row in sweep_rows:
        assert row["DR"] >= row["AB"] - 0.02, row
    # Under scarcity AB clearly drops below DR's near-full ratio.
    assert sweep_rows[-1]["AB"] < sweep_rows[0]["AB"] - 0.2
