"""Background claim (paper section III): Ring vs Path ORAM bandwidth.

Ring ORAM's raison d'etre is the online bandwidth reduction: a
readPath fetches one block per bucket instead of Path ORAM's Z per
bucket, so online traffic falls by ~Z while overall traffic stays in
the same ballpark (offline evictions dominate). This benchmark measures
both protocols side by side on the same workload and checks the
claimed ratios, anchoring the substrate this reproduction builds on.
"""

import pytest

from _common import bench_levels, bench_requests, emit, once
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.oram.path import PathOram, path_oram_config
from repro.oram.ring import RingOram
from repro.oram.stats import CountingSink, OpKind
from repro.traces.spec import spec_trace


def test_ring_vs_path_bandwidth(benchmark):
    lv = max(8, bench_levels() - 4)
    ring_cfg = schemes.classic_ring(lv)
    # Path ORAM with the classic Z=4, sized to the same block count so
    # the identical trace drives both.
    path_cfg = path_oram_config(lv, z=4, treetop_levels=ring_cfg.treetop_levels)
    n_blocks = min(ring_cfg.n_real_blocks, path_cfg.n_real_blocks)
    n = max(800, bench_requests())
    trace = spec_trace("mcf", n_blocks, n, seed=61)

    def run():
        ring_sink = CountingSink(lv)
        ring = RingOram(ring_cfg, sink=ring_sink, seed=61)
        ring.warm_fill()
        path_sink = CountingSink(lv)
        path = PathOram(path_cfg, sink=path_sink, seed=61)
        for req in trace:
            ring.access(req.block, write=req.write)
            path.access(req.block, write=req.write)
        return ring_sink, path_sink

    ring_sink, path_sink = once(benchmark, run)

    def online_reads(sink):
        return sink.by_kind[OpKind.READ_PATH].data_reads

    def total_offchip(sink):
        return sink.total_offchip

    rows = [
        {
            "protocol": "Path ORAM (Z=4)",
            "online_blocks_per_access": online_reads(path_sink) / n,
            "total_accesses_per_access": total_offchip(path_sink) / n,
        },
        {
            "protocol": f"Ring ORAM (Z=12, Z'=5)",
            "online_blocks_per_access": online_reads(ring_sink) / n,
            "total_accesses_per_access": total_offchip(ring_sink) / n,
        },
    ]
    ratio = online_reads(path_sink) / online_reads(ring_sink)
    rows.append({
        "protocol": "Path/Ring online ratio",
        "online_blocks_per_access": ratio,
        "total_accesses_per_access": None,
    })
    emit(
        "ring_vs_path",
        render_mapping_table(
            rows,
            title=("Section III background: Ring ORAM's online-bandwidth "
                   "advantage over Path ORAM (paper: ~Z' lower per bucket, "
                   "i.e. 4x at Z=4 path buckets)"),
        ),
    )

    # Ring reads 1 block/bucket online; Path reads Z=4: ratio = Z.
    assert ratio == pytest.approx(4.0, rel=0.05)
    # Path ORAM pays its full cost online; Ring defers most of it to
    # offline evictions, keeping total traffic within ~2x of Path.
    path_total = total_offchip(path_sink) / n
    ring_total = total_offchip(ring_sink) / n
    assert ring_total < 2.2 * path_total
