"""Table II: summary of the state-of-the-art ORAM implementations.

The paper's Table II is qualitative: per scheme, whether space demand,
online accesses, bucket reshuffles, path evictions, and background
evictions improve or worsen versus plain Ring ORAM + CB. We regenerate
it *quantitatively*: each cell is the measured ratio to Baseline, and
the assertions check the table's signs (improved < 1 < more).
"""


from _common import bench_levels, bench_requests, emit, once, sim_config
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace


def _levels():
    # Leaf-level reshuffle behaviour needs several evictPath rounds
    # (leaves x A accesses each); run a smaller tree for longer.
    return max(8, bench_levels() - 4)


def test_table2_scheme_summary(benchmark):
    lv = _levels()
    cfgs = schemes.main_schemes(lv)
    n = max(4 * cfgs[0].n_leaves * cfgs[0].evict_rate, 2 * bench_requests())
    trace = spec_trace("mcf", cfgs[0].n_real_blocks, n, seed=22)

    def run():
        return {c.name: simulate(c, trace, sim_config(22)) for c in cfgs}

    results = once(benchmark, run)

    base = results["Baseline"]
    base_evict_time = base.time_by_kind["evictPath"] or 1.0

    rows = []
    for name, r in results.items():
        rows.append({
            "scheme": name,
            "space": r.tree_bytes / base.tree_bytes,
            "online_ns_per_op": (
                (r.time_by_kind["readPath"] / max(1, r.ops_by_kind["readPath"]))
                / (base.time_by_kind["readPath"]
                   / max(1, base.ops_by_kind["readPath"]))
            ),
            "remote_accesses": r.remote_accesses,
            "bucket_reshuffles": (
                r.ops_by_kind["earlyReshuffle"]
                / max(1, base.ops_by_kind["earlyReshuffle"])
            ),
            "evict_path_time": r.time_by_kind["evictPath"] / base_evict_time,
            "background_accesses": r.background_accesses
            - base.background_accesses,
        })
    emit(
        "table2_scheme_summary",
        render_mapping_table(
            rows,
            title=("Table II (measured): ratios to Baseline "
                   "(paper signs: DR slight-more online/reshuffle; NS more "
                   "reshuffle, improved eviction; both improved space)"),
        ),
    )

    by = {r["scheme"]: r for r in rows}
    # Space demand: improved for DR, NS, AB.
    assert by["DR"]["space"] < 1
    assert by["NS"]["space"] < 1
    assert by["AB"]["space"] < by["DR"]["space"]
    # Bucket reshuffles: NS clearly more; DR only slightly more.
    assert by["NS"]["bucket_reshuffles"] > 1.02
    assert by["DR"]["bucket_reshuffles"] < by["NS"]["bucket_reshuffles"] * 1.5
    # Path eviction: improved (cheaper) for NS and AB.
    assert by["NS"]["evict_path_time"] < 1.02
    assert by["AB"]["evict_path_time"] < 1.0
    # Online accesses: only the DR family redirects reads remotely.
    assert by["DR"]["remote_accesses"] > 0
    assert by["AB"]["remote_accesses"] > 0
    assert by["NS"]["remote_accesses"] == 0
    # Per-readPath cost: DR is not cheaper than NS (remote misses).
    assert by["DR"]["online_ns_per_op"] >= by["NS"]["online_ns_per_op"] * 0.97
