"""Fig. 10: number of reshuffles across the levels.

The paper compares per-level reshuffle counts (evictPath +
earlyReshuffle bucket rewrites): DR tracks Baseline closely thanks to
the S extension; NS reshuffles markedly more at its two reduced-S
levels; AB (which uses an L3-S1-style shape on top of DR) sits between
them at the bottom levels.
"""

import numpy as np

from _common import (
    bench_levels,
    bench_requests,
    emit,
    once,
    sim_config,
)
from repro.analysis.report import render_series
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace


def _levels():
    # Early reshuffles at the leaves need several complete evictPath
    # rounds (leaves x A accesses each); a smaller tree reaches that
    # regime within the bench budget.
    return max(8, bench_levels() - 4)


def test_fig10_reshuffles_per_level(benchmark):
    lv = _levels()
    cfgs = {c.name: c for c in schemes.main_schemes(lv)}
    n = max(4 * cfgs["Baseline"].n_leaves * cfgs["Baseline"].evict_rate,
            2 * bench_requests())
    trace = spec_trace("mcf", cfgs["Baseline"].n_real_blocks, n, seed=10)

    def run():
        return {
            name: simulate(cfg, trace, sim_config(10))
            for name, cfg in cfgs.items()
            if name != "IR"
        }

    results = once(benchmark, run)

    series = {
        name: {i: r.reshuffles_by_level[i] for i in range(lv)}
        for name, r in results.items()
    }
    emit(
        "fig10_reshuffles_per_level",
        render_series(
            "level",
            series,
            title=(f"Fig 10: reshuffles per level (L={lv}, {n} accesses; "
                   "paper: DR ~ Baseline, NS spikes at its bottom 2 levels)"),
            precision=0,
        ),
    )

    base = np.array(results["Baseline"].reshuffles_by_level, dtype=float)
    dr = np.array(results["DR"].reshuffles_by_level, dtype=float)
    ns = np.array(results["NS"].reshuffles_by_level, dtype=float)
    ab = np.array(results["AB"].reshuffles_by_level, dtype=float)

    # NS reshuffles more than Baseline at its two reduced levels.
    assert ns[-2:].sum() > 1.1 * base[-2:].sum()
    # Above the NS band, NS matches Baseline closely.
    assert ns[: lv - 2].sum() <= 1.1 * base[: lv - 2].sum()
    # DR's extension keeps it near Baseline across the DR band.
    band = slice(lv - 6, lv)
    assert dr[band].sum() < 1.5 * base[band].sum()
    # AB reshuffles at least as much as DR at the S=0 levels.
    assert ab[-3:].sum() >= dr[-3:].sum() * 0.9
