"""Shared infrastructure for the figure/table benchmarks.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md's per-experiment index). Space numbers are computed
on the paper's exact 24-level geometry; timing numbers run the
trace-driven simulator on a scaled-down tree (default 14 levels -- the
level ranges of every scheme scale with the tree, so per-level capacity
fractions and therefore the result *shapes* are preserved).

Environment knobs:

- ``REPRO_BENCH_LEVELS``   tree levels for timing runs (default 14)
- ``REPRO_BENCH_REQUESTS`` trace length per run (default 1000)
- ``REPRO_BENCH_WARMUP``   warm-up requests excluded from measurement
  (default: a third of the trace)
- ``REPRO_BENCH_SUITE``    comma-separated benchmark subset (default:
  a representative 6-benchmark slice; set to "all" for the full 17)
- ``REPRO_BENCH_WORKERS``  process-pool width for sweep cells
  (default 1 = serial; results are identical at any width)

Each benchmark prints its paper-style rows (run pytest with ``-s`` to
see them live) and also writes them to ``benchmarks/generated/<name>.txt``
(gitignored). The committed reference outputs under ``benchmarks/out/``
are refreshed deliberately by copying from ``generated/`` -- ``make
clean`` only ever removes ``generated/``, so the checked-in baselines
that EXPERIMENTS.md references survive a clean.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core import schemes
from repro.sim import SimConfig
from repro.sim.results import SimResult, geomean
from repro.sim.runner import run_suite
from repro.traces.spec import spec_benchmarks

#: Committed reference outputs (never written by test runs).
OUT_DIR = Path(__file__).resolve().parent / "out"
#: Regenerated on every benchmark run; gitignored and `make clean`-able.
GENERATED_DIR = Path(__file__).resolve().parent / "generated"

#: Representative slice: the memory-bound outlier (mcf), heavy writers
#: (lbm, xz), mixed (x264), and low-MPKI compute-bound codes (gcc, nab).
DEFAULT_BENCHES = ["mcf", "lbm", "xz", "x264", "gcc", "nab"]


def bench_levels() -> int:
    return int(os.environ.get("REPRO_BENCH_LEVELS", "14"))


def bench_requests() -> int:
    return int(os.environ.get("REPRO_BENCH_REQUESTS", "1000"))


def bench_warmup() -> int:
    default = bench_requests() // 3
    return int(os.environ.get("REPRO_BENCH_WARMUP", str(default)))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_suite() -> List[str]:
    raw = os.environ.get("REPRO_BENCH_SUITE")
    if not raw:
        return list(DEFAULT_BENCHES)
    if raw.strip().lower() == "all":
        return spec_benchmarks()
    return [b.strip() for b in raw.split(",") if b.strip()]


def sim_config(seed: int = 0) -> SimConfig:
    return SimConfig(seed=seed, warmup_requests=bench_warmup())


def run_main_matrix(
    benchmarks: Optional[Sequence[str]] = None,
    suite: str = "spec",
    seed: int = 0,
    levels: Optional[int] = None,
    scheme_list=None,
) -> Dict[str, Dict[str, SimResult]]:
    """Scheme x benchmark sweep at the bench scale."""
    lv = levels or bench_levels()
    cfgs = scheme_list if scheme_list is not None else schemes.main_schemes(lv)
    return run_suite(
        cfgs,
        suite=suite,
        benchmarks=list(benchmarks) if benchmarks else bench_suite(),
        n_requests=bench_requests(),
        seed=seed,
        sim=sim_config(seed),
        workers=bench_workers(),
    )


def normalized_geomean(
    results: Dict[str, Dict[str, SimResult]],
    metric: str = "exec_ns",
    baseline: str = "Baseline",
) -> Dict[str, float]:
    """Geomean-over-benchmarks of metric normalized to the baseline."""
    base = results[baseline]
    out = {}
    for scheme, by_trace in results.items():
        out[scheme] = geomean([
            getattr(r, metric) / getattr(base[t], metric)
            for t, r in by_trace.items()
        ])
    return out


def emit(name: str, text: str) -> None:
    """Print a figure's text and persist it under benchmarks/generated/."""
    print()
    print(text)
    GENERATED_DIR.mkdir(exist_ok=True)
    (GENERATED_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
