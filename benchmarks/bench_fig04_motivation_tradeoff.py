"""Fig. 4: the space/performance trade-off that motivates AB-ORAM.

Starting from *classic* Ring ORAM (Z = 12, Z' = 5, S = 7 -- no bucket
compaction), the paper reduces S by 3 for the last x levels (L-1 .. L-7)
and reports: (top) space demand falling on a saturating (logarithmic)
curve, and (bottom) execution time growing roughly linearly. The space
side is computed exactly on the 24-level geometry; the timing side is
simulated at the bench scale.
"""

import pytest

from _common import (
    bench_levels,
    bench_requests,
    emit,
    once,
    sim_config,
)
from repro.analysis.report import render_mapping_table
from repro.core import schemes
from repro.sim import simulate
from repro.traces.spec import spec_trace

MAX_X = 7
REDUCE = 3


def test_fig04_motivation_tradeoff(benchmark):
    lv = bench_levels()
    base_lv = schemes.classic_ring(lv)
    trace = spec_trace("mcf", base_lv.n_real_blocks, bench_requests(), seed=4)

    def run():
        out = {}
        out["baseline"] = simulate(base_lv, trace, sim_config(4))
        for x in range(1, MAX_X + 1):
            cfg = schemes.ring_s_reduced(lv, bottom=x, reduce_by=REDUCE)
            out[f"L-{x}"] = simulate(cfg, trace, sim_config(4))
        return out

    results = once(benchmark, run)

    # Exact space at the paper's 24-level geometry.
    base24 = schemes.classic_ring(24)
    rows = []
    base_exec = results["baseline"].exec_ns
    for x in range(0, MAX_X + 1):
        name = "baseline" if x == 0 else f"L-{x}"
        cfg24 = base24 if x == 0 else schemes.ring_s_reduced(24, bottom=x,
                                                             reduce_by=REDUCE)
        rows.append({
            "config": name,
            "space_norm_L24": cfg24.tree_bytes / base24.tree_bytes,
            "slowdown": results[name].exec_ns / base_exec,
        })
    emit(
        "fig04_motivation_tradeoff",
        render_mapping_table(
            rows,
            title=("Fig 4: shrink S by 3 for the last x levels of classic "
                   "Ring ORAM (space exact at L=24; slowdown simulated at "
                   f"L={lv}; paper: space saturates ~L-3, slowdown stays low)"),
        ),
    )

    spaces = [r["space_norm_L24"] for r in rows]
    # Space decreases monotonically and saturates: the first reduction
    # step dwarfs the later ones (logarithmic shape).
    assert all(a >= b for a, b in zip(spaces, spaces[1:]))
    first_step = spaces[0] - spaces[1]
    late_step = spaces[3] - spaces[4]
    assert first_step > 4 * late_step
    # L-3 already captures most of the achievable saving.
    total = spaces[0] - spaces[-1]
    assert (spaces[0] - spaces[3]) > 0.85 * total
    # The paper's L-3 point: ~1 - 3/12 * (7/8) ~ 0.78 of baseline space.
    assert spaces[3] == pytest.approx(0.78, abs=0.01)
    # Performance stays within a modest band of the baseline throughout.
    for r in rows:
        assert r["slowdown"] < 1.25
