"""Fig. 15: generalizability over PARSEC.

The paper repeats the main experiment on PARSEC: space savings are
identical (they are application-independent geometry), and the
performance overheads stay at DR ~3% / AB ~4% / NS ~0%.
"""

import pytest

from _common import emit, normalized_geomean, once, run_main_matrix
from repro.analysis.report import render_mapping_table
from repro.analysis.space import normalized_space
from repro.core import schemes

PARSEC_SLICE = ["canneal", "streamcluster", "dedup", "swaptions",
                "fluidanimate", "vips"]


def test_fig15_parsec_generalizability(benchmark):
    matrix = once(
        benchmark,
        lambda: run_main_matrix(benchmarks=PARSEC_SLICE, suite="parsec",
                                seed=15),
    )

    base = matrix["Baseline"]
    rows = []
    for bench in base:
        row = {"benchmark": bench}
        for scheme, by_trace in matrix.items():
            row[scheme] = by_trace[bench].exec_ns / base[bench].exec_ns
        rows.append(row)
    gm = normalized_geomean(matrix, "exec_ns")
    rows.append({"benchmark": "geomean", **gm})
    emit(
        "fig15_parsec",
        render_mapping_table(
            rows,
            title=("Fig 15: PARSEC normalized execution time (paper: "
                   "NS ~Baseline, DR +3%, AB +4%; space identical to SPEC)"),
        ),
    )

    # Space saving is application-independent: same exact ratios.
    norm = normalized_space(schemes.main_schemes(24))
    assert norm["AB"] == pytest.approx(0.645, abs=0.003)
    # Performance band matches the SPEC run.
    for scheme in ("DR", "NS", "AB"):
        assert 0.85 < gm[scheme] < 1.15, f"{scheme}: {gm[scheme]}"
    # Cross-suite consistency: per-benchmark ratios deviate little
    # from their geomean (generalizability).
    for row in rows[:-1]:
        for scheme in ("DR", "NS", "AB"):
            assert abs(row[scheme] - gm[scheme]) < 0.08, (scheme, row)
