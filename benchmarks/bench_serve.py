"""Serving harness benchmark: BENCH_serve.json plus its CI assertions.

Runs the smoke serving matrix (open-loop zipf workloads, fifo vs.
batch scheduling over the oblivious KV store), emits the report next
to the other benchmark artifacts, and asserts the properties the CI
gate relies on:

- the report validates against the serve schema;
- the deterministic view is byte-identical across two same-seed runs;
- the batch policy beats naive FIFO on the workload that expects it
  (fewer oblivious accesses per request, at least one dedup hit);
- the access sequence stays indistinguishable: the guessing attacker's
  advantage is within the smoke tolerance under both policies.

The full (nightly-scale) matrix runs via ``python -m repro serve
bench`` in the scheduled workflow, not here.
"""

import json

from _common import GENERATED_DIR, emit, once
from repro.serve.bench import dedup_check, run_serve, smoke_config
from repro.serve.report import render_report
from repro.serve.schema import deterministic_bytes, validate_report

#: Smoke-scale bound on |success - 1/L| for the guessing attacker.
ADVANTAGE_TOL = 0.05


def test_serve_smoke_matrix(benchmark):
    doc = once(benchmark, lambda: run_serve(smoke_config()))

    assert validate_report(doc) == []
    emit("serve_smoke", render_report(doc))
    GENERATED_DIR.mkdir(exist_ok=True)
    out = GENERATED_DIR / "BENCH_serve.json"
    with open(out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    # The scheduler's wins must not come from skipping real work: every
    # cell served the full request count.
    for cell in doc["cells"]:
        assert "error" not in cell, cell
        assert cell["sim"]["requests"] == sum(cell["sim"]["ops"].values())

    # Dedup gate: batch beats naive FIFO where the workload expects it.
    assert dedup_check(doc) == []

    # Security: batching must not leak -- the observed access sequence
    # keeps the guessing attacker at chance level under both policies.
    for cell in doc["cells"]:
        sec = cell["sim"]["security"]
        assert abs(sec["advantage"]) < ADVANTAGE_TOL, (
            cell["workload"], cell["policy"], sec,
        )

    # Determinism: a second same-seed run reproduces every
    # non-wall-clock byte.
    again = run_serve(smoke_config())
    assert deterministic_bytes(again) == deterministic_bytes(doc)
